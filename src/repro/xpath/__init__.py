"""XPath subset: the path language used by the paper's XQuery examples.

Quick use::

    from repro.xpath import parse_path, evaluate_path, XPathContext

    path = parse_path('document("bio.xml")/db/lab[@ID="baselab"]/name')
    context = XPathContext(documents={"bio.xml": document})
    bindings = evaluate_path(path, context)
"""

from repro.xpath.ast import (
    AttributeStep,
    BooleanOp,
    ChildStep,
    Comparison,
    ContextStart,
    DerefStep,
    DocumentStart,
    Exists,
    Expr,
    IndexCall,
    Literal,
    Number,
    Path,
    PathValue,
    RefStep,
    Step,
    TextStep,
    VariableStart,
)
from repro.xpath.evaluator import (
    Binding,
    XPathContext,
    evaluate_expr,
    evaluate_path,
    evaluate_predicate,
    string_value,
)
from repro.xpath.lexer import Token, TokenStream, tokenize
from repro.xpath.parser import parse_expr, parse_expr_from, parse_path, parse_path_from

__all__ = [
    "AttributeStep",
    "Binding",
    "BooleanOp",
    "ChildStep",
    "Comparison",
    "ContextStart",
    "DerefStep",
    "DocumentStart",
    "Exists",
    "Expr",
    "IndexCall",
    "Literal",
    "Number",
    "Path",
    "PathValue",
    "RefStep",
    "Step",
    "TextStep",
    "Token",
    "TokenStream",
    "VariableStart",
    "XPathContext",
    "evaluate_expr",
    "evaluate_path",
    "evaluate_predicate",
    "parse_expr",
    "parse_expr_from",
    "parse_path",
    "parse_path_from",
    "string_value",
    "tokenize",
]
