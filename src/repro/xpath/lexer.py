"""Tokenizer shared by the XPath and XQuery parsers.

Token types: NAME, VARIABLE (``$name``), STRING, NUMBER, and fixed
punctuation/operators.  Keywords are *not* distinguished here — the
parsers decide contextually whether a NAME like ``and`` or ``UPDATE``
is a keyword, since XPath names and XQuery keywords share the lexical
space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XPathError

# Multi-character operators must be listed before their prefixes.
_PUNCTUATION = (
    "->", "//", "!=", "<=", ">=", ":=",
    "/", ".", "@", "(", ")", "[", "]", "{", "}", ",", "*", "=", "<", ">",
)


@dataclass(frozen=True)
class Token:
    type: str  # NAME | VARIABLE | STRING | NUMBER | punctuation literal | EOF
    value: str
    position: int  # character offset, for error messages

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`XPathError` on illegal input."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if ch in "\"'":
            end = text.find(ch, index + 1)
            if end == -1:
                raise XPathError(f"unterminated string literal at offset {index}")
            tokens.append(Token("STRING", text[index + 1 : end], index))
            index = end + 1
            continue
        if ch == "$":
            start = index + 1
            end = start
            while end < length and (text[end].isalnum() or text[end] in "_-"):
                end += 1
            if end == start:
                raise XPathError(f"expected a variable name after '$' at offset {index}")
            tokens.append(Token("VARIABLE", text[start:end], index))
            index = end
            continue
        if ch.isdigit():
            end = index
            while end < length and (text[end].isdigit() or text[end] == "."):
                end += 1
            # A trailing '.' belongs to a following call like `.index()`.
            if text[index:end].endswith("."):
                end -= 1
            tokens.append(Token("NUMBER", text[index:end], index))
            index = end
            continue
        if ch.isalpha() or ch == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] in "_-"):
                # A '-' that begins the '->' dereference operator ends the name.
                if text[end] == "-" and end + 1 < length and text[end + 1] == ">":
                    break
                end += 1
            tokens.append(Token("NAME", text[index:end], index))
            index = end
            continue
        for punct in _PUNCTUATION:
            if text.startswith(punct, index):
                tokens.append(Token(punct, punct, index))
                index += len(punct)
                break
        else:
            raise XPathError(f"illegal character {ch!r} at offset {index}")
    tokens.append(Token("EOF", "", length))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.type != "EOF":
            self._index += 1
        return token

    def at(self, token_type: str, value: str | None = None) -> bool:
        token = self.peek()
        if token.type != token_type:
            return False
        return value is None or token.value == value

    def at_name(self, value: str) -> bool:
        """Case-sensitive check for a specific NAME token."""
        return self.at("NAME", value)

    def accept(self, token_type: str) -> Token | None:
        if self.at(token_type):
            return self.next()
        return None

    def expect(self, token_type: str, context: str = "") -> Token:
        token = self.peek()
        if token.type != token_type:
            where = f" in {context}" if context else ""
            raise XPathError(
                f"expected {token_type!r}{where}, found {token.type!r} "
                f"({token.value!r}) at offset {token.position}"
            )
        return self.next()

    def expect_name(self, value: str, context: str = "") -> Token:
        token = self.peek()
        if token.type != "NAME" or token.value != value:
            where = f" in {context}" if context else ""
            raise XPathError(
                f"expected {value!r}{where}, found {token.value!r} at offset {token.position}"
            )
        return self.next()

    def at_end(self) -> bool:
        return self.peek().type == "EOF"
