"""Evaluation of the XPath subset over the in-memory data model.

Evaluation happens inside an :class:`XPathContext`, which names the
reachable documents (for ``document("...")``), holds variable bindings
(single nodes, as established by the XQuery FOR/LET machinery), and
optionally carries a context node for relative paths.

A path evaluates to a list of *node bindings* in document order with
duplicates removed: elements, attributes, reference entries, whole
reference lists (``@name`` on an IDREFS attribute), or text nodes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.errors import XPathError
from repro.xmlmodel.model import (
    Attribute,
    Document,
    Element,
    Node,
    RefEntry,
    Reference,
    Text,
)
from repro.xpath.ast import (
    AttributeStep,
    BooleanOp,
    ChildStep,
    Comparison,
    ContextStart,
    DerefStep,
    DocumentStart,
    Exists,
    Expr,
    IndexCall,
    Literal,
    Number,
    Path,
    PathValue,
    RefStep,
    Step,
    TextStep,
    VariableStart,
)

Binding = Union[Element, Attribute, Reference, RefEntry, Text]
Atom = Union[str, float]


class XPathContext:
    """Everything a path needs to evaluate: documents, variables, context.

    ``documents`` maps the names used in ``document("...")`` calls to
    parsed documents.  ``variables`` maps variable names to their
    current single-node binding.  ``context_node`` anchors relative
    paths (it is the update target inside nested sub-updates).
    """

    def __init__(
        self,
        documents: Optional[dict[str, Document]] = None,
        variables: Optional[dict[str, Binding]] = None,
        context_node: Optional[Binding] = None,
    ) -> None:
        self.documents = dict(documents or {})
        self.variables = dict(variables or {})
        self.context_node = context_node

    def child(
        self,
        variables: Optional[dict[str, Binding]] = None,
        context_node: Optional[Binding] = None,
    ) -> "XPathContext":
        """A derived context with extra variables and/or a new context node."""
        merged = dict(self.variables)
        if variables:
            merged.update(variables)
        return XPathContext(
            documents=self.documents,
            variables=merged,
            context_node=context_node if context_node is not None else self.context_node,
        )

    def document_containing(self, node: Node) -> Optional[Document]:
        """Find the registered document whose tree contains ``node``."""
        root = node.root_element()
        if root is None:
            return None
        for document in self.documents.values():
            if document.root is root:
                return document
        return None

    def resolve_id(self, node: Node, id_value: str) -> Optional[Element]:
        """Resolve an ID within the document that owns ``node``."""
        document = self.document_containing(node)
        if document is None:
            return None
        return document.element_by_id(id_value)


def string_value(node: Binding) -> str:
    """XPath string value: recursive text for elements, the value for
    attributes/text, the target ID for reference entries."""
    if isinstance(node, Element):
        parts: list[str] = []
        _collect_text(node, parts)
        return "".join(parts)
    if isinstance(node, Attribute):
        return node.value
    if isinstance(node, RefEntry):
        return node.target
    if isinstance(node, Reference):
        return " ".join(node.targets)
    if isinstance(node, Text):
        return node.value
    raise XPathError(f"cannot take the string value of {node!r}")


def _collect_text(element: Element, parts: list[str]) -> None:
    for child in element.children:
        if isinstance(child, Text):
            parts.append(child.value)
        else:
            _collect_text(child, parts)


def evaluate_path(path: Path, context: XPathContext) -> list[Binding]:
    """Evaluate a path to its node bindings, in document order, deduplicated."""
    steps = list(path.steps)
    if isinstance(path.start, DocumentStart) and steps and isinstance(steps[0], ChildStep):
        # Standard XPath: the document node sits above the root element,
        # so the first child step of an absolute path names the ROOT
        # (document("x.xml")/CustDB selects the <CustDB> root itself).
        nodes = _document_first_step(path.start, steps.pop(0), context)
    else:
        nodes = _start_nodes(path, context)
    for step in steps:
        nodes = _apply_step(step, nodes, context)
    return nodes


def _document_first_step(
    start: DocumentStart, step: ChildStep, context: XPathContext
) -> list[Binding]:
    document = context.documents.get(start.name)
    if document is None:
        known = sorted(context.documents)
        raise XPathError(f"unknown document {start.name!r}; known: {known}")
    root = document.root
    if step.descendant:
        candidates: list[Binding] = [
            element
            for element in root.iter_descendants(include_self=True)
            if step.name == "*" or element.name == step.name
        ]
    elif step.name == "*" or root.name == step.name:
        candidates = [root]
    else:
        candidates = []
    if step.predicates:
        candidates = [
            node
            for node in candidates
            if all(
                evaluate_predicate(predicate, context.child(context_node=node))
                for predicate in step.predicates
            )
        ]
    return candidates


def _start_nodes(path: Path, context: XPathContext) -> list[Binding]:
    start = path.start
    if isinstance(start, DocumentStart):
        document = context.documents.get(start.name)
        if document is None:
            known = sorted(context.documents)
            raise XPathError(f"unknown document {start.name!r}; known: {known}")
        return [document.root]
    if isinstance(start, VariableStart):
        if start.name not in context.variables:
            raise XPathError(f"unbound variable ${start.name}")
        value = context.variables[start.name]
        # LET clauses bind whole node sequences; FOR clauses bind one node.
        return list(value) if isinstance(value, list) else [value]
    assert isinstance(start, ContextStart)
    if context.context_node is None:
        raise XPathError("relative path used without a context node")
    return [context.context_node]


def _apply_step(step: Step, nodes: list[Binding], context: XPathContext) -> list[Binding]:
    results: list[Binding] = []
    seen: set[int] = set()

    def emit(node: Binding) -> None:
        if node.node_id not in seen:
            seen.add(node.node_id)
            results.append(node)

    for node in nodes:
        for produced in _step_candidates(step, node, context):
            emit(produced)
    if isinstance(step, ChildStep) and step.predicates:
        results = [
            node
            for node in results
            if all(
                evaluate_predicate(predicate, context.child(context_node=node))
                for predicate in step.predicates
            )
        ]
    return results


def _step_candidates(
    step: Step, node: Binding, context: XPathContext
) -> Iterable[Binding]:
    if isinstance(step, ChildStep):
        if not isinstance(node, Element):
            return
        if step.descendant:
            pool: Iterable[Element] = node.iter_descendants(include_self=True)
        else:
            pool = node.child_elements()
        for element in pool:
            if step.name == "*" or element.name == step.name:
                yield element
        return
    if isinstance(step, AttributeStep):
        if not isinstance(node, Element):
            return
        attribute = node.attributes.get(step.name)
        if attribute is not None:
            yield attribute
        reference = node.references.get(step.name)
        if reference is not None:
            yield reference
        return
    if isinstance(step, RefStep):
        if not isinstance(node, Element):
            return
        for reference in node.references.values():
            if step.label != "*" and reference.name != step.label:
                continue
            for entry in reference.entries:
                if step.target == "*" or entry.target == step.target:
                    yield entry
        return
    if isinstance(step, DerefStep):
        targets: list[str] = []
        if isinstance(node, RefEntry):
            targets = [node.target]
        elif isinstance(node, Reference):
            targets = node.targets
        elif isinstance(node, Attribute):
            targets = node.value.split()
        for target in targets:
            element = context.resolve_id(node, target)
            if element is not None:
                yield element
        return
    if isinstance(step, TextStep):
        if isinstance(node, Element):
            for child in node.children:
                if isinstance(child, Text):
                    yield child
        return
    raise XPathError(f"unsupported step {step!r}")


# ----------------------------------------------------------------------
# Predicate / WHERE expression evaluation
# ----------------------------------------------------------------------
def evaluate_expr(expr: Expr, context: XPathContext) -> Union[list[Atom], Atom, bool]:
    """Evaluate an expression to a value: atoms, atom lists, or a boolean."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, PathValue):
        return [string_value(node) for node in evaluate_path(expr.path, context)]
    if isinstance(expr, IndexCall):
        positions: list[Atom] = []
        for node in evaluate_path(expr.path, context):
            parent = node.parent
            if isinstance(parent, Element) and isinstance(node, (Element, Text)):
                positions.append(float(parent.child_index(node)))
        return positions
    if isinstance(expr, Exists):
        return bool(evaluate_path(expr.path, context))
    if isinstance(expr, Comparison):
        return _compare(expr, context)
    if isinstance(expr, BooleanOp):
        left = evaluate_predicate(expr.left, context)
        if expr.op == "and":
            return left and evaluate_predicate(expr.right, context)
        return left or evaluate_predicate(expr.right, context)
    raise XPathError(f"unsupported expression {expr!r}")


def evaluate_predicate(expr: Expr, context: XPathContext) -> bool:
    """Evaluate an expression in boolean position."""
    value = evaluate_expr(expr, context)
    if isinstance(value, bool):
        return value
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, float):
        return value != 0.0
    return bool(value)


def _as_atoms(value: Union[list[Atom], Atom, bool]) -> list[Atom]:
    if isinstance(value, list):
        return value
    if isinstance(value, bool):
        return [1.0 if value else 0.0]
    return [value]


def _compare(expr: Comparison, context: XPathContext) -> bool:
    """Existential comparison: true iff any pair of atoms satisfies it."""
    left_atoms = _as_atoms(evaluate_expr(expr.left, context))
    right_atoms = _as_atoms(evaluate_expr(expr.right, context))
    numeric_hint = isinstance(expr.left, Number) or isinstance(expr.right, Number)
    ordering = expr.op in ("<", "<=", ">", ">=")
    for left in left_atoms:
        for right in right_atoms:
            if _compare_atoms(expr.op, left, right, numeric_hint or ordering):
                return True
    return False


def _compare_atoms(op: str, left: Atom, right: Atom, prefer_numeric: bool) -> bool:
    if prefer_numeric:
        try:
            left_value: Union[str, float] = float(left)
            right_value: Union[str, float] = float(right)
        except (TypeError, ValueError):
            left_value, right_value = str(left), str(right)
    else:
        left_value, right_value = str(left), str(right)
    if op == "=":
        return left_value == right_value
    if op == "!=":
        return left_value != right_value
    if op == "<":
        return left_value < right_value
    if op == "<=":
        return left_value <= right_value
    if op == ">":
        return left_value > right_value
    if op == ">=":
        return left_value >= right_value
    raise XPathError(f"unknown comparison operator {op!r}")
