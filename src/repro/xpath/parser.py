"""Recursive-descent parser for the XPath subset.

Two entry points are shared with the XQuery parser, which embeds path
expressions and predicates inside its own grammar:

* :func:`parse_path_from` / :func:`parse_expr_from` consume from an
  existing :class:`~repro.xpath.lexer.TokenStream` and stop at the first
  token that cannot continue the expression (e.g. an XQuery keyword);
* :func:`parse_path` / :func:`parse_expr` parse a standalone string and
  require it to be fully consumed.
"""

from __future__ import annotations

from repro.errors import XPathError
from repro.xpath.ast import (
    AttributeStep,
    BooleanOp,
    ChildStep,
    Comparison,
    ContextStart,
    DerefStep,
    DocumentStart,
    Exists,
    Expr,
    IndexCall,
    Literal,
    Number,
    Path,
    PathValue,
    RefStep,
    Start,
    Step,
    TextStep,
    VariableStart,
)
from repro.xpath.lexer import TokenStream, tokenize

_COMPARISON_OPS = ("=", "!=", "<=", ">=", "<", ">")

# Names that terminate an embedded path when the XQuery parser hands us
# its token stream; the paper writes keywords in upper case.
_STOP_KEYWORDS = frozenset(
    {"FOR", "LET", "WHERE", "UPDATE", "RETURN", "IN", "DELETE", "RENAME",
     "INSERT", "REPLACE", "WITH", "TO", "BEFORE", "AFTER", "and", "or"}
)


def _at_keyword(stream: TokenStream) -> bool:
    token = stream.peek()
    return token.type == "NAME" and token.value in _STOP_KEYWORDS


def parse_path(text: str) -> Path:
    """Parse a standalone path expression string."""
    stream = TokenStream(tokenize(text))
    path = parse_path_from(stream)
    if not stream.at_end():
        token = stream.peek()
        raise XPathError(
            f"unexpected {token.value!r} after path expression at offset {token.position}"
        )
    return path


def parse_expr(text: str) -> Expr:
    """Parse a standalone predicate/WHERE expression string."""
    stream = TokenStream(tokenize(text))
    expr = parse_expr_from(stream)
    if not stream.at_end():
        token = stream.peek()
        raise XPathError(
            f"unexpected {token.value!r} after expression at offset {token.position}"
        )
    return expr


# ----------------------------------------------------------------------
# Paths
# ----------------------------------------------------------------------
def parse_path_from(stream: TokenStream) -> Path:
    start = _parse_start(stream)
    steps: list[Step] = []
    if isinstance(start, ContextStart):
        # A relative path begins with a step, not a separator.
        steps.append(_parse_axis_step(stream, descendant=False))
    while True:
        if stream.at("//"):
            stream.next()
            steps.append(_parse_axis_step(stream, descendant=True))
        elif stream.at("/") or _at_dot_separator(stream):
            stream.next()
            steps.append(_parse_axis_step(stream, descendant=False))
        elif stream.at("->"):
            stream.next()
            steps.append(DerefStep())
            # `->name` may continue without an explicit separator.
            if stream.peek().type in ("NAME", "@", "*") and not _at_keyword(stream):
                steps.append(_parse_axis_step(stream, descendant=False))
        else:
            return Path(start, tuple(steps))


def _at_dot_separator(stream: TokenStream) -> bool:
    """A '.' continues the path unless it introduces `.index()`."""
    if not stream.at("."):
        return False
    return not (
        stream.peek(1).type == "NAME"
        and stream.peek(1).value == "index"
        and stream.peek(2).type == "("
    )


def _parse_start(stream: TokenStream) -> Start:
    token = stream.peek()
    if token.type == "VARIABLE":
        stream.next()
        return VariableStart(token.value)
    if token.type == "NAME" and token.value == "document" and stream.peek(1).type == "(":
        stream.next()
        stream.expect("(", "document()")
        name = stream.expect("STRING", "document()").value
        stream.expect(")", "document()")
        return DocumentStart(name)
    return ContextStart()


def _parse_axis_step(stream: TokenStream, descendant: bool) -> Step:
    token = stream.peek()
    if token.type == "@":
        stream.next()
        name = stream.expect("NAME", "attribute step").value
        return AttributeStep(name)
    if token.type == "NAME" and token.value == "ref" and stream.peek(1).type == "(":
        stream.next()
        stream.expect("(", "ref()")
        label = _parse_ref_argument(stream)
        stream.expect(",", "ref()")
        target = _parse_ref_argument(stream)
        stream.expect(")", "ref()")
        return RefStep(label, target)
    if token.type == "NAME" and token.value == "text" and stream.peek(1).type == "(":
        stream.next()
        stream.expect("(", "text()")
        stream.expect(")", "text()")
        return TextStep()
    if token.type in ("NAME", "*"):
        stream.next()
        predicates: list[Expr] = []
        while stream.at("["):
            stream.next()
            predicates.append(parse_expr_from(stream))
            stream.expect("]", "predicate")
        return ChildStep(token.value, tuple(predicates), descendant=descendant)
    raise XPathError(
        f"expected a path step, found {token.value!r} at offset {token.position}"
    )


def _parse_ref_argument(stream: TokenStream) -> str:
    token = stream.peek()
    if token.type in ("NAME", "STRING"):
        stream.next()
        return token.value
    if token.type == "*":
        stream.next()
        return "*"
    raise XPathError(
        f"expected a name, string or '*' in ref(), found {token.value!r} "
        f"at offset {token.position}"
    )


# ----------------------------------------------------------------------
# Predicate / WHERE expressions
# ----------------------------------------------------------------------
def parse_expr_from(stream: TokenStream) -> Expr:
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> Expr:
    left = _parse_and(stream)
    while stream.at_name("or"):
        stream.next()
        left = BooleanOp("or", left, _parse_and(stream))
    return left


def _parse_and(stream: TokenStream) -> Expr:
    left = _parse_comparison(stream)
    while stream.at_name("and"):
        stream.next()
        left = BooleanOp("and", left, _parse_comparison(stream))
    return left


def _parse_comparison(stream: TokenStream) -> Expr:
    left = _parse_value(stream)
    for op in _COMPARISON_OPS:
        if stream.at(op):
            stream.next()
            right = _parse_value(stream)
            return Comparison(op, left, right)
    if isinstance(left, PathValue):
        # A bare path in boolean position is an existence test.
        return Exists(left.path)
    return left


def _parse_value(stream: TokenStream) -> Expr:
    token = stream.peek()
    if token.type == "STRING":
        stream.next()
        return Literal(token.value)
    if token.type == "NUMBER":
        stream.next()
        return Number(float(token.value))
    if token.type == "(":
        stream.next()
        inner = _parse_or(stream)
        stream.expect(")", "parenthesised expression")
        return inner
    path = parse_path_from(stream)
    if stream.at("."):
        # Only `.index()` survives _at_dot_separator; consume it here.
        stream.next()
        stream.expect_name("index", "index()")
        stream.expect("(", "index()")
        stream.expect(")", "index()")
        return IndexCall(path)
    return PathValue(path)
