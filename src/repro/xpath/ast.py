"""AST node classes for the XPath subset used by the paper's examples.

The subset covers everything Sections 4 and 6 use:

* ``document("name")`` starts, ``$var`` starts, and relative paths;
* child (``/`` or ``.``) and descendant-or-self (``//``) steps with name
  tests or ``*``;
* attribute steps ``@name``;
* the paper's ``ref(label, target)`` reference-binding function with
  ``*`` wildcards for either argument;
* the dereference operator ``->`` (follows an IDREF to its element);
* ``text()`` steps selecting PCDATA children;
* predicates ``[...]`` with ``and`` / ``or``, comparisons
  (``= != < <= > >=``), relative paths, literals and numbers, and the
  positional ``index()`` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


# ----------------------------------------------------------------------
# Path starts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DocumentStart:
    """``document("bio.xml")`` — selects the named document's root."""

    name: str


@dataclass(frozen=True)
class VariableStart:
    """``$var`` — continues from an existing binding."""

    name: str


@dataclass(frozen=True)
class ContextStart:
    """Relative path — starts at the evaluation context node."""


Start = Union[DocumentStart, VariableStart, ContextStart]


# ----------------------------------------------------------------------
# Steps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChildStep:
    """``/name`` (or ``.name``): child elements with a name test.

    ``name`` may be ``"*"``.  ``descendant=True`` encodes ``//name``.
    """

    name: str
    predicates: tuple["Expr", ...] = ()
    descendant: bool = False


@dataclass(frozen=True)
class AttributeStep:
    """``@name``: binds the attribute object itself (Section 4.2)."""

    name: str


@dataclass(frozen=True)
class RefStep:
    """``ref(label, target)``: binds an individual IDREF entry.

    Either argument may be the wildcard ``"*"``.
    """

    label: str
    target: str


@dataclass(frozen=True)
class DerefStep:
    """``->``: follow IDREF bindings to the elements they reference."""


@dataclass(frozen=True)
class TextStep:
    """``text()``: PCDATA children of the context element."""


Step = Union[ChildStep, AttributeStep, RefStep, DerefStep, TextStep]


@dataclass(frozen=True)
class Path:
    """A full path expression: a start plus a sequence of steps."""

    start: Start
    steps: tuple[Step, ...] = ()

    def is_relative(self) -> bool:
        return isinstance(self.start, ContextStart)

    def with_start(self, start: Start) -> "Path":
        return Path(start, self.steps)


# ----------------------------------------------------------------------
# Predicate / WHERE expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Literal:
    """A quoted string constant."""

    value: str


@dataclass(frozen=True)
class Number:
    """A numeric constant (compared numerically when possible)."""

    value: float


@dataclass(frozen=True)
class PathValue:
    """A path used as a value: evaluates to the node-set's string values."""

    path: Path


@dataclass(frozen=True)
class IndexCall:
    """``<path>.index()``: 0-based position of the bound node among its
    parent's children (Example 5 in the paper)."""

    path: Path


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with existential node-set semantics."""

    op: str  # '=', '!=', '<', '<=', '>', '>='
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class BooleanOp:
    """``and`` / ``or`` over two sub-expressions."""

    op: str  # 'and' | 'or'
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Exists:
    """A bare path in predicate position: true iff it matches anything."""

    path: Path


Expr = Union[Literal, Number, PathValue, IndexCall, Comparison, BooleanOp, Exists]
