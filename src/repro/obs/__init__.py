"""`repro.obs`: metrics and tracing for every layer of the pipeline.

The paper's methodology attributes performance to counted work (SQL
statements, tuples, fsyncs); this package is where those counts live.
See :mod:`repro.obs.metrics` for the registry and naming scheme and
:mod:`repro.obs.tracing` for hierarchical phase spans.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_delta,
    delta,
    get_registry,
)
from repro.obs.tracing import Span, Tracer, get_tracer, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "counter_delta",
    "delta",
    "get_registry",
    "get_tracer",
    "span",
]
