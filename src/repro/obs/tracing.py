"""Hierarchical trace spans with monotonic timings and JSON export.

``span("xquery.parse")`` wraps a phase of work.  Two things happen on
every span, traced or not:

* the phase's duration is observed into the ``span.<name>`` histogram
  of the process registry (:mod:`repro.obs.metrics`), so ``python -m
  repro stats`` always has per-phase breakdowns;
* if the global tracer is *capturing* (``serve --trace-out`` etc.), a
  :class:`Span` record is kept, nested under the innermost open span of
  the same thread.

Spans nest per thread: the group-commit thread's ``service.commit``
tree is a separate root from the client thread's ``serve.statement``
tree, which is exactly the concurrency structure worth seeing.
Durations come from ``time.perf_counter`` (monotonic); ``start_unix``
is wall-clock and only for humans reading the export.

Span names follow the metric naming scheme — dotted,
``<layer>.<phase>``: ``xquery.parse``, ``xquery.bind``,
``xquery.execute``, ``sql.translate``, ``sql.execute``, ``delta.diff``,
``service.commit``, ``service.apply``, ``wal.append``, ``wal.fsync``,
``recovery.replay``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.obs.metrics import get_registry


@dataclass
class Span:
    """One completed (or open) phase of work."""

    name: str
    start_unix: float
    thread: str
    meta: dict = field(default_factory=dict)
    duration: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "start_unix": round(self.start_unix, 6),
            "duration_s": round(self.duration, 9),
            "thread": self.thread,
        }
        if self.meta:
            out["meta"] = self.meta
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class Tracer:
    """Collects span trees while capturing; no-op (histograms only) otherwise."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._capturing = False
        self._roots: list[Span] = []

    # ------------------------------------------------------------------
    # Capture lifecycle
    # ------------------------------------------------------------------
    @property
    def capturing(self) -> bool:
        return self._capturing

    def start_capture(self) -> None:
        with self._lock:
            self._capturing = True

    def stop_capture(self) -> None:
        with self._lock:
            self._capturing = False

    def drain(self) -> list[Span]:
        """Remove and return every completed root span collected so far."""
        with self._lock:
            roots, self._roots = self._roots, []
        return roots

    # ------------------------------------------------------------------
    # Span recording
    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **meta) -> Iterator[Optional[Span]]:
        started = time.perf_counter()
        record: Optional[Span] = None
        stack = None
        if self._capturing:
            record = Span(
                name=name,
                start_unix=time.time(),
                thread=threading.current_thread().name,
                meta=dict(meta),
            )
            stack = self._stack()
            stack.append(record)
        try:
            yield record
        finally:
            elapsed = time.perf_counter() - started
            get_registry().histogram(f"span.{name}").observe(elapsed)
            if record is not None and stack is not None:
                record.duration = elapsed
                stack.pop()
                if stack:
                    stack[-1].children.append(record)
                else:
                    with self._lock:
                        self._roots.append(record)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self) -> dict:
        """Drain collected spans into a JSON-serialisable document."""
        return {"spans": [root.to_dict() for root in self.drain()]}

    def write_json(self, path: str) -> int:
        """Drain to ``path``; returns the number of root spans written."""
        document = self.export()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        return len(document["spans"])


#: The process-wide tracer used by the ``span()`` convenience function.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def span(name: str, **meta):
    """Time a phase: histogram always, trace tree when capturing."""
    return _TRACER.span(name, **meta)
