"""Process-wide metrics: counters, gauges, and histograms.

The paper's whole evaluation (Section 7) is built on *counting* — SQL
statements issued, tuples touched, per-strategy timings — so every
layer of this reproduction reports into one :class:`MetricsRegistry`
instead of keeping ad-hoc fields.  The registry is process-wide
(:func:`get_registry`), lock-protected, and cheap enough to leave on in
hot paths (an increment is one lock acquisition and an integer add).

Metric naming is dotted and hierarchical, ``<layer>.<thing>[.<detail>]``:

* ``sql.statements.client`` / ``sql.statements.trigger`` — counters,
  fed by :class:`~repro.relational.database.Database`;
* ``wal.appends`` / ``wal.fsyncs`` / ``wal.bytes`` — counters, fed by
  the write-ahead log;
* ``batcher.batch_size`` — histogram; ``batcher.queue_depth`` — gauge;
* ``lock.wait.read`` / ``lock.wait.write`` — histograms of seconds
  spent waiting for a reader-writer lock;
* ``span.<name>`` — histograms of seconds per traced phase (see
  :mod:`repro.obs.tracing`).

Benchmarks attribute work to a window by diffing two snapshots
(:meth:`MetricsRegistry.snapshot` + :func:`delta`) instead of resetting
shared counters, so concurrent readers never see a counter jump
backwards.
"""

from __future__ import annotations

import threading
from typing import Optional, Union


class Counter:
    """A monotonically increasing integer."""

    kind = "counter"

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down (queue depths, active sessions)."""

    kind = "gauge"

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Aggregate observations: count, sum, min, max, and mean.

    The full distribution is not retained (that would be unbounded in a
    long-lived server); count+sum is what the benchmarks need to report
    per-window means, and min/max bound the tails.
    """

    kind = "histogram"

    __slots__ = ("name", "_lock", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another histogram's snapshot into this one: counts and
        sums add, min/max widen.  A zero-count snapshot is a no-op (its
        min/max are None and must not clobber real observations)."""
        count = int(snap.get("count", 0))
        if count <= 0:
            return
        low = snap.get("min")
        high = snap.get("max")
        with self._lock:
            self._count += count
            self._sum += float(snap.get("sum", 0.0))
            if low is not None and (self._min is None or low < self._min):
                self._min = float(low)
            if high is not None and (self._max is None or high > self._max):
                self._max = float(high)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count if self._count else 0.0,
            }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics, created on first use, snapshot as plain dicts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, name: str, cls) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """A point-in-time copy: metric name -> its snapshot dict."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def merge(
        self, snapshot: dict[str, dict], *, gauge_tag: Optional[str] = None
    ) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        This is how the shard router's ``stats`` fan-out aggregates N
        worker registries (and how a bench can pool registries from
        several processes): counters sum, histograms merge count/sum
        and widen min/max, and gauges — point-in-time levels that do
        not meaningfully add across processes — land under
        ``name{gauge_tag}`` when a tag is given (e.g. ``shard-3``) so
        each source's level stays visible; without a tag the incoming
        value overwrites.
        """
        for name, snap in snapshot.items():
            kind = snap.get("kind")
            if kind == "counter":
                self.counter(name).inc(int(snap.get("value", 0)))
            elif kind == "histogram":
                self.histogram(name).merge_snapshot(snap)
            elif kind == "gauge":
                target = f"{name}{{{gauge_tag}}}" if gauge_tag else name
                self.gauge(target).set(float(snap.get("value", 0.0)))
            else:
                raise ValueError(
                    f"snapshot entry {name!r} has unknown kind {kind!r}"
                )

    def reset(self) -> None:
        """Forget every metric (tests; production code diffs snapshots)."""
        with self._lock:
            self._metrics.clear()


def delta(before: dict[str, dict], after: dict[str, dict]) -> dict[str, dict]:
    """Attribute work to a window by diffing two registry snapshots.

    Counters diff their value; histograms diff count and sum (and carry
    the window mean); gauges report their latest value.  Metrics that
    did not move are omitted.
    """
    out: dict[str, dict] = {}
    for name, snap in after.items():
        prior = before.get(name, {})
        if snap["kind"] == "counter":
            moved = snap["value"] - prior.get("value", 0)
            if moved:
                out[name] = {"kind": "counter", "value": moved}
        elif snap["kind"] == "histogram":
            count = snap["count"] - prior.get("count", 0)
            total = snap["sum"] - prior.get("sum", 0.0)
            if count:
                out[name] = {
                    "kind": "histogram",
                    "count": count,
                    "sum": total,
                    "mean": total / count,
                }
        else:  # gauge: the latest level is the meaningful number
            if snap["value"] != prior.get("value", 0.0):
                out[name] = {"kind": "gauge", "value": snap["value"]}
    return out


def counter_delta(before: dict[str, dict], after: dict[str, dict], name: str) -> int:
    """Counter movement between two snapshots (0 if absent)."""
    prior = before.get(name, {}).get("value", 0)
    current = after.get(name, {}).get("value", 0)
    return current - prior


#: The process-wide registry every layer reports into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY
