"""Randomized-structure synthetic documents (Section 7.1.2).

Same parameters as the fixed generator, reinterpreted: ``depth`` is now
the *maximum* depth — each subtree's actual depth is drawn uniformly
from [2, depth] — and the fanout at each internal node is drawn
uniformly from [1, fanout].  The DTD (and hence the relational schema)
is the fixed generator's: every level's children list simply may be
shorter or empty.
"""

from __future__ import annotations

import random

from repro.relational.database import Database
from repro.relational.idgen import IdAllocator
from repro.relational.schema import MappingSchema
from repro.workloads.synthetic import SyntheticParams, _random_string
from repro.xmlmodel.model import Document, Element, Text

MIN_DEPTH = 2


def generate_randomized(params: SyntheticParams) -> Document:
    """Build a randomized synthetic document in memory."""
    rng = random.Random(params.seed)
    root = Element("root")
    for _ in range(params.scaling_factor):
        depth = rng.randint(min(MIN_DEPTH, params.depth), params.depth)
        root.append_child(_build(rng, 1, depth, params.fanout))
    return Document(root)


def _build(rng: random.Random, level: int, depth: int, max_fanout: int) -> Element:
    element = Element(f"n{level}")
    str_child = Element("str")
    str_child.append_child(Text(_random_string(rng)))
    num_child = Element("num")
    num_child.append_child(Text(str(rng.randrange(1_000_000))))
    element.append_child(str_child)
    element.append_child(num_child)
    if level < depth:
        for _ in range(rng.randint(1, max_fanout)):
            element.append_child(_build(rng, level + 1, depth, max_fanout))
    return element


def load_randomized_directly(
    db: Database,
    schema: MappingSchema,
    params: SyntheticParams,
    allocator: IdAllocator | None = None,
) -> int:
    """Direct-to-tuples loader for the randomized generator."""
    allocator = allocator or IdAllocator(db)
    rng = random.Random(params.seed)
    rows: dict[str, list[tuple]] = {
        f"n{level}": [] for level in range(1, params.depth + 1)
    }
    # Plan the structure first, then assign one contiguous id block.
    structure: list[tuple[int, int]] = []  # (level, parent_index); -1 = root

    def plan(level: int, parent_index: int, depth: int) -> None:
        index = len(structure)
        structure.append((level, parent_index))
        if level < depth:
            for _ in range(rng.randint(1, params.fanout)):
                plan(level + 1, index, depth)

    for _ in range(params.scaling_factor):
        depth = rng.randint(min(MIN_DEPTH, params.depth), params.depth)
        plan(1, -1, depth)

    first = allocator.reserve(len(structure) + 1)
    root_id = first
    ids = [first + 1 + offset for offset in range(len(structure))]
    data_rng = random.Random(params.seed + 1)
    for index, (level, parent_index) in enumerate(structure):
        parent_id = root_id if parent_index == -1 else ids[parent_index]
        rows[f"n{level}"].append(
            (
                ids[index],
                parent_id,
                _random_string(data_rng),
                str(data_rng.randrange(1_000_000)),
            )
        )
    db.executemany('INSERT INTO "root" (id, parentId) VALUES (?, ?)', [(root_id, None)])
    for table, table_rows in rows.items():
        if table_rows:
            db.executemany(
                f'INSERT INTO "{table}" (id, parentId, "str", "num") '
                "VALUES (?, ?, ?, ?)",
                table_rows,
            )
    db.commit()
    return root_id
