"""Workload generators for the paper's experiments (Section 7.1).

* :mod:`~repro.workloads.synthetic` — fixed-structure synthetic
  documents parameterised by scaling factor, depth, and fanout
  (Section 7.1.1), plus a fast direct-to-tuples loader;
* :mod:`~repro.workloads.randomized` — randomized-structure variant
  (Section 7.1.2);
* :mod:`~repro.workloads.dblp` — DBLP-shaped bibliography data
  (Section 7.1.3; synthetic stand-in for the 40 MB DBLP snapshot, see
  DESIGN.md);
* :mod:`~repro.workloads.tpcw` — customer databases matching the
  paper's Figure 4 DTD (used by examples and tests).
"""

from repro.workloads.synthetic import (
    SyntheticParams,
    generate_fixed,
    load_fixed_directly,
    subtree_tuple_count,
    synthetic_dtd,
)
from repro.workloads.randomized import generate_randomized, load_randomized_directly
from repro.workloads.dblp import DblpParams, dblp_dtd, generate_dblp, load_dblp_directly
from repro.workloads.tpcw import CustomerParams, generate_customers

__all__ = [
    "CustomerParams",
    "DblpParams",
    "SyntheticParams",
    "dblp_dtd",
    "generate_customers",
    "generate_dblp",
    "generate_fixed",
    "generate_randomized",
    "load_dblp_directly",
    "load_fixed_directly",
    "load_randomized_directly",
    "subtree_tuple_count",
    "synthetic_dtd",
]
