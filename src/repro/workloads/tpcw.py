"""Customer-database generator for the paper's Figure 4 DTD.

A simplified TPC/W-style workload used by the examples and integration
tests: customers with inlined name/address and nested orders and order
lines.  The DTD matches :data:`CUSTOMER_DTD`, which is also the paper's
running example in Sections 5 and 6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xmlmodel.model import Document, Element, Text

CUSTOMER_DTD = """\
<!ELEMENT CustDB (Customer*)>
<!ELEMENT Customer (Name, Address, Order*)>
<!ELEMENT Address (City, State)>
<!ELEMENT Order (Date, Status, OrderLine*)>
<!ELEMENT OrderLine (ItemName, Qty)>
<!ELEMENT Name (#PCDATA)>
<!ELEMENT City (#PCDATA)>
<!ELEMENT State (#PCDATA)>
<!ELEMENT Date (#PCDATA)>
<!ELEMENT Status (#PCDATA)>
<!ELEMENT ItemName (#PCDATA)>
<!ELEMENT Qty (#PCDATA)>
"""

_FIRST_NAMES = (
    "John", "Mary", "Ahmed", "Wei", "Lena", "Carlos", "Aisha", "Yuki",
    "Olga", "Pierre", "Nina", "Raj",
)
_CITIES = (
    ("Seattle", "WA"), ("Portland", "OR"), ("Los Angeles", "CA"),
    ("Philadelphia", "PA"), ("Austin", "TX"), ("Chicago", "IL"),
)
_ITEMS = ("tire", "rim", "pump", "seat", "bell", "chain", "pedal", "light")
_STATUSES = ("ready", "shipped", "suspended", "delivered")


@dataclass(frozen=True)
class CustomerParams:
    customers: int = 50
    max_orders: int = 4
    max_lines: int = 5
    seed: int = 0


def generate_customers(params: CustomerParams = CustomerParams()) -> Document:
    """Build a CustDB document with the given shape."""
    rng = random.Random(params.seed)
    root = Element("CustDB")
    for index in range(params.customers):
        root.append_child(_customer(rng, index, params))
    return Document(root)


def _customer(rng: random.Random, index: int, params: CustomerParams) -> Element:
    customer = Element("Customer")
    name = Element("Name")
    name.append_child(Text(f"{rng.choice(_FIRST_NAMES)}{index}"))
    customer.append_child(name)
    address = Element("Address")
    city_name, state_name = rng.choice(_CITIES)
    city = Element("City")
    city.append_child(Text(city_name))
    state = Element("State")
    state.append_child(Text(state_name))
    address.append_child(city)
    address.append_child(state)
    customer.append_child(address)
    for _ in range(rng.randint(0, params.max_orders)):
        customer.append_child(_order(rng, params))
    return customer


def _order(rng: random.Random, params: CustomerParams) -> Element:
    order = Element("Order")
    date = Element("Date")
    date.append_child(
        Text(f"{rng.randint(1999, 2001)}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}")
    )
    order.append_child(date)
    status = Element("Status")
    status.append_child(Text(rng.choice(_STATUSES)))
    order.append_child(status)
    for _ in range(rng.randint(1, params.max_lines)):
        line = Element("OrderLine")
        item = Element("ItemName")
        item.append_child(Text(rng.choice(_ITEMS)))
        qty = Element("Qty")
        qty.append_child(Text(str(rng.randint(1, 8))))
        line.append_child(item)
        line.append_child(qty)
        order.append_child(line)
    return order
