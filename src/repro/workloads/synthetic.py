"""Fixed-structure synthetic documents (Section 7.1.1).

A document is a root with ``scaling_factor`` subtrees.  Each subtree is
a complete tree of ``depth`` levels with ``fanout`` children per
internal node; the element tag encodes the level (``n1`` ... ``nd``),
so Shared Inlining produces one relation per level — the schema shape
behind Figures 6-11.  To simulate content, every element carries two
data subelements: a 50-character string and an integer (both inlined).

Tuple count per subtree is ``sum(fanout**i for i in range(depth))``;
e.g. depth=4, fanout=8 gives 585 tuples — times scaling factor 100 that
is the 58 500 tuples of Table 1's largest configuration.

Two loaders are provided: :func:`generate_fixed` builds the in-memory
XML document (for tests and small runs), and
:func:`load_fixed_directly` writes the equivalent tuples straight into
a store's relations (for large benchmark configurations — loading time
is not part of any measured experiment).
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass

from repro.relational.database import Database
from repro.relational.idgen import IdAllocator
from repro.relational.schema import MappingSchema
from repro.xmlmodel.model import Document, Element, Text

DATA_STRING_LENGTH = 50


@dataclass(frozen=True)
class SyntheticParams:
    """Parameters of a fixed synthetic document (Table 1)."""

    scaling_factor: int
    depth: int
    fanout: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scaling_factor < 1 or self.depth < 1 or self.fanout < 1:
            raise ValueError("scaling_factor, depth, and fanout must be >= 1")

    @property
    def subtree_tuples(self) -> int:
        return subtree_tuple_count(self.depth, self.fanout)

    @property
    def total_tuples(self) -> int:
        """Element tuples excluding the root."""
        return self.scaling_factor * self.subtree_tuples


def subtree_tuple_count(depth: int, fanout: int) -> int:
    """Elements in one subtree: sum of fanout**i for i in 0..depth-1."""
    if fanout == 1:
        return depth
    return (fanout**depth - 1) // (fanout - 1)


def synthetic_dtd(depth: int) -> str:
    """The DTD for fixed synthetic documents of the given depth."""
    lines = ["<!ELEMENT root (n1*)>"]
    for level in range(1, depth + 1):
        if level < depth:
            lines.append(f"<!ELEMENT n{level} (str, num, n{level + 1}*)>")
        else:
            lines.append(f"<!ELEMENT n{level} (str, num)>")
    lines.append("<!ELEMENT str (#PCDATA)>")
    lines.append("<!ELEMENT num (#PCDATA)>")
    return "\n".join(lines)


def _random_string(rng: random.Random) -> str:
    return "".join(rng.choices(string.ascii_lowercase, k=DATA_STRING_LENGTH))


def generate_fixed(params: SyntheticParams) -> Document:
    """Build the synthetic document as an in-memory tree."""
    rng = random.Random(params.seed)
    root = Element("root")
    for _ in range(params.scaling_factor):
        root.append_child(_build_subtree(rng, level=1, params=params))
    return Document(root)


def _build_subtree(rng: random.Random, level: int, params: SyntheticParams) -> Element:
    element = Element(f"n{level}")
    str_child = Element("str")
    str_child.append_child(Text(_random_string(rng)))
    num_child = Element("num")
    num_child.append_child(Text(str(rng.randrange(1_000_000))))
    element.append_child(str_child)
    element.append_child(num_child)
    if level < params.depth:
        for _ in range(params.fanout):
            element.append_child(_build_subtree(rng, level + 1, params))
    return element


def load_fixed_directly(
    db: Database,
    schema: MappingSchema,
    params: SyntheticParams,
    allocator: IdAllocator | None = None,
) -> int:
    """Write the synthetic document's tuples straight into the relations.

    Produces exactly the rows :func:`generate_fixed` +
    :func:`~repro.relational.shredder.shred_document` would, orders of
    magnitude faster for big configurations.  Returns the root tuple id.
    """
    allocator = allocator or IdAllocator(db)
    rng = random.Random(params.seed)
    total = 1 + params.total_tuples
    first = allocator.reserve(total)
    next_id = first
    rows: dict[str, list[tuple]] = {f"n{level}": [] for level in range(1, params.depth + 1)}

    root_id = next_id
    next_id += 1

    def emit(level: int, parent_id: int) -> None:
        nonlocal next_id
        tuple_id = next_id
        next_id += 1
        rows[f"n{level}"].append(
            (tuple_id, parent_id, _random_string(rng), str(rng.randrange(1_000_000)))
        )
        if level < params.depth:
            for _ in range(params.fanout):
                emit(level + 1, tuple_id)

    for _ in range(params.scaling_factor):
        emit(1, root_id)

    db.executemany('INSERT INTO "root" (id, parentId) VALUES (?, ?)', [(root_id, None)])
    for table, table_rows in rows.items():
        if table_rows:
            db.executemany(
                f'INSERT INTO "{table}" (id, parentId, "str", "num") '
                "VALUES (?, ?, ?, ?)",
                table_rows,
            )
    db.commit()
    return root_id
