"""DBLP-shaped bibliography data (Section 7.1.3).

The paper used the conference-publications portion of the real DBLP
bibliography (40 MB, > 400 000 tuples): conferences contain publication
subelements which contain author and citation subelements.  We cannot
ship DBLP, so this module generates data with the same *shape* — very
"bushy": many mid-sized conference subtrees, publications with a few
authors and citations each, and publication years spread over a range
so that "delete publications of year 2000" touches a small fraction of
the document.  That bushiness + small touched fraction is exactly what
drives Table 2's results (per-statement/cascading sweeps pay a full
scan per relation to delete a sliver of the data).

The default parameters produce roughly 40 000 tuples; scale
``conferences`` up 10x to approximate the paper's full size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relational.database import Database
from repro.relational.idgen import IdAllocator
from repro.relational.schema import MappingSchema
from repro.xmlmodel.model import Document, Element, Text

DBLP_DTD = """\
<!ELEMENT dblp (conference*)>
<!ELEMENT conference (name, publication*)>
<!ELEMENT publication (title, year, booktitle?, pages?, author*, citation*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT booktitle (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT citation (#PCDATA)>
"""

_CONFERENCE_STEMS = (
    "SIGMOD", "VLDB", "ICDE", "PODS", "EDBT", "ICDT", "CIKM", "KDD",
    "WWW", "SOSP", "OSDI", "NSDI", "PLDI", "POPL", "ISCA", "MICRO",
)
_SURNAMES = (
    "Smith", "Jones", "Chen", "Garcia", "Mueller", "Tanaka", "Kumar",
    "Ivanov", "Silva", "Kim", "Nguyen", "Brown", "Wilson", "Martin",
)
_TITLE_WORDS = (
    "Efficient", "Scalable", "Adaptive", "Incremental", "Distributed",
    "Query", "Processing", "of", "XML", "Views", "Updates", "Streams",
    "Indexing", "Semistructured", "Data", "over", "Relational", "Databases",
)


@dataclass(frozen=True)
class DblpParams:
    """Shape parameters for the DBLP-like generator."""

    conferences: int = 80
    publications_per_conference: int = 60  # mean; actual is uniform +-50%
    max_authors: int = 4
    max_citations: int = 12
    year_range: tuple[int, int] = (1990, 2004)
    seed: int = 0

    def expected_tuples(self) -> int:
        """Rough tuple estimate (conference + publication + authors/citations)."""
        pubs = self.conferences * self.publications_per_conference
        per_pub = 1 + (1 + self.max_authors) / 2 + (self.max_citations) / 2
        return int(self.conferences + pubs * per_pub)


def dblp_dtd() -> str:
    return DBLP_DTD


def _title(rng: random.Random) -> str:
    return " ".join(rng.choices(_TITLE_WORDS, k=6))


def _author(rng: random.Random) -> str:
    return f"{rng.choice(_SURNAMES)}, {chr(rng.randrange(65, 91))}."


def generate_dblp(params: DblpParams = DblpParams()) -> Document:
    """Build the DBLP-shaped document in memory (small configurations)."""
    rng = random.Random(params.seed)
    root = Element("dblp")
    for conference_index in range(params.conferences):
        conference = Element("conference")
        name = Element("name")
        stem = _CONFERENCE_STEMS[conference_index % len(_CONFERENCE_STEMS)]
        name.append_child(Text(f"{stem} {1990 + conference_index % 15}"))
        conference.append_child(name)
        for _ in range(_publication_count(rng, params)):
            conference.append_child(_publication(rng, params))
        root.append_child(conference)
    return Document(root)


def _publication_count(rng: random.Random, params: DblpParams) -> int:
    mean = params.publications_per_conference
    return rng.randint(max(1, mean // 2), mean + mean // 2)


def _publication(rng: random.Random, params: DblpParams) -> Element:
    publication = Element("publication")
    title = Element("title")
    title.append_child(Text(_title(rng)))
    publication.append_child(title)
    year = Element("year")
    year.append_child(Text(str(rng.randint(*params.year_range))))
    publication.append_child(year)
    pages = Element("pages")
    start = rng.randrange(1, 800)
    pages.append_child(Text(f"{start}-{start + rng.randrange(8, 25)}"))
    publication.append_child(pages)
    for _ in range(rng.randint(1, params.max_authors)):
        author = Element("author")
        author.append_child(Text(_author(rng)))
        publication.append_child(author)
    for _ in range(rng.randint(0, params.max_citations)):
        citation = Element("citation")
        citation.append_child(Text(f"ref{rng.randrange(100000)}"))
        publication.append_child(citation)
    return publication


def load_dblp_directly(
    db: Database,
    schema: MappingSchema,
    params: DblpParams = DblpParams(),
    allocator: IdAllocator | None = None,
) -> int:
    """Direct-to-tuples loader mirroring :func:`generate_dblp`.

    Relations (from the DTD): dblp, conference (name inlined),
    publication (title/year/booktitle/pages inlined), author, citation.
    """
    allocator = allocator or IdAllocator(db)
    rng = random.Random(params.seed)

    conference_rows: list[tuple] = []
    publication_rows: list[tuple] = []
    author_rows: list[tuple] = []
    citation_rows: list[tuple] = []

    # Pass 1: plan sizes to reserve one contiguous id block.
    total = 1  # root
    conference_plans = []
    for conference_index in range(params.conferences):
        pub_plans = []
        for _ in range(_publication_count(rng, params)):
            authors = rng.randint(1, params.max_authors)
            citations = rng.randint(0, params.max_citations)
            pub_plans.append((authors, citations))
            total += 1 + authors + citations
        conference_plans.append(pub_plans)
        total += 1

    first = allocator.reserve(total)
    next_id = first
    root_id = next_id
    next_id += 1

    data_rng = random.Random(params.seed + 1)
    for conference_index, pub_plans in enumerate(conference_plans):
        conference_id = next_id
        next_id += 1
        stem = _CONFERENCE_STEMS[conference_index % len(_CONFERENCE_STEMS)]
        conference_rows.append(
            (conference_id, root_id, f"{stem} {1990 + conference_index % 15}")
        )
        for authors, citations in pub_plans:
            publication_id = next_id
            next_id += 1
            start = data_rng.randrange(1, 800)
            publication_rows.append(
                (
                    publication_id,
                    conference_id,
                    _title(data_rng),
                    str(data_rng.randint(*params.year_range)),
                    None,
                    f"{start}-{start + data_rng.randrange(8, 25)}",
                )
            )
            for _ in range(authors):
                author_rows.append((next_id, publication_id, _author(data_rng)))
                next_id += 1
            for _ in range(citations):
                citation_rows.append(
                    (next_id, publication_id, f"ref{data_rng.randrange(100000)}")
                )
                next_id += 1

    db.executemany('INSERT INTO "dblp" (id, parentId) VALUES (?, ?)', [(root_id, None)])
    db.executemany(
        'INSERT INTO "conference" (id, parentId, "name") VALUES (?, ?, ?)',
        conference_rows,
    )
    db.executemany(
        'INSERT INTO "publication" (id, parentId, "title", "year", "booktitle", '
        '"pages") VALUES (?, ?, ?, ?, ?, ?)',
        publication_rows,
    )
    db.executemany(
        'INSERT INTO "author" (id, parentId, "author") VALUES (?, ?, ?)', author_rows
    )
    db.executemany(
        'INSERT INTO "citation" (id, parentId, "citation") VALUES (?, ?, ?)',
        citation_rows,
    )
    db.commit()
    return root_id
