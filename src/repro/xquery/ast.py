"""AST for the XQuery subset with the paper's update extensions.

The statement form (Section 4.1)::

    FOR $binding1 IN XPath-expr, ...
    LET $binding := XPath-expr, ...
    WHERE predicate1, ...
    UPDATE $binding { subOp {, subOp}* }      -- one or more
    -- or --
    RETURN expr

``clauses`` preserves the textual interleaving of FOR and LET.  Update
clauses reuse the operation types from :mod:`repro.updates.operations`;
nested updates appear as :class:`~repro.updates.operations.SubUpdate`
entries inside an operation list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.updates.binding import LetClause
from repro.updates.operations import ForClause, UpdateOp
from repro.xpath.ast import Expr, Path

Clause = Union[ForClause, LetClause]


@dataclass(frozen=True)
class UpdateClause:
    """``UPDATE $target { op, op, ... }``."""

    target_variable: str
    operations: tuple[UpdateOp, ...]


@dataclass(frozen=True)
class Query:
    """A parsed FLWU (For-Let-Where-Update) or FLWR statement."""

    clauses: tuple[Clause, ...]
    where: tuple[Expr, ...] = ()
    updates: tuple[UpdateClause, ...] = ()
    returns: Optional[Path] = None

    @property
    def is_update(self) -> bool:
        return bool(self.updates)
