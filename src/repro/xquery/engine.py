"""In-memory execution of FLWU statements over parsed documents.

:class:`XQueryEngine` is the top of the in-memory stack: it parses a
statement, enumerates all variable bindings over the *input* documents
(Section 3.2's bind-before-update rule, including nested Sub-Update
pattern matches), and then either executes the update operations
iteration by iteration or returns the RETURN clause's bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import UpdateError, XQueryError
from repro.obs import get_registry, span
from repro.updates.binding import enumerate_bindings
from repro.updates.executor import BoundUpdate, UpdateExecutor
from repro.xmlmodel.model import Document, Element
from repro.xmlmodel.policy import RefPolicy
from repro.xpath.evaluator import Binding, XPathContext, evaluate_path
from repro.xquery.ast import Query
from repro.xquery.cache import parse_cached


@dataclass
class UpdateResult:
    """Outcome of an update statement."""

    bindings: int  # number of variable-binding iterations
    operations: int  # primitive operations executed (incl. nested)


@dataclass
class QueryResult:
    """Outcome of a RETURN statement: the bound nodes, in binding order."""

    nodes: list[Binding] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)


class XQueryEngine:
    """Executes XQuery statements (with update extensions) in memory.

    ``documents`` maps the names used in ``document("...")`` to parsed
    documents; ``ordered`` selects the execution model; ``policy``
    governs reference typing inside constructed XML content (defaults
    to the policy that is uniform across the registered documents, or
    the plain default policy).
    """

    def __init__(
        self,
        documents: dict[str, Document],
        ordered: bool = True,
        policy: Optional[RefPolicy] = None,
    ) -> None:
        self.documents = documents
        self.ordered = ordered
        self.policy = policy or RefPolicy.default()

    def parse(self, text: str) -> Query:
        """Parse through the process-wide statement cache (repeated
        statement texts skip the lexer and parser entirely)."""
        with span("xquery.parse"):
            return parse_cached(text, policy=self.policy)

    def execute(self, statement: Union[str, Query]) -> Union[UpdateResult, QueryResult]:
        """Run a statement; returns an UpdateResult or a QueryResult."""
        query = self.parse(statement) if isinstance(statement, str) else statement
        registry = get_registry()
        registry.counter("xquery.statements").inc()
        context = XPathContext(documents=self.documents)
        with span("xquery.bind"):
            combos = list(enumerate_bindings(query.clauses, query.where, context))
        registry.counter("xquery.bindings").inc(len(combos))
        if not query.is_update:
            with span("xquery.return"):
                return self._execute_return(query, combos, context)
        executor = UpdateExecutor(context, ordered=self.ordered)
        # Phase 1: bind every iteration of every UPDATE clause over the
        # pre-update documents.
        bound: list[BoundUpdate] = []
        with span("xquery.bind_updates"):
            for combo in combos:
                for clause in query.updates:
                    target = combo.get(clause.target_variable)
                    if target is None:
                        raise XQueryError(
                            f"UPDATE target ${clause.target_variable} is not bound by "
                            "the FOR/LET clauses"
                        )
                    if not isinstance(target, Element):
                        raise UpdateError(
                            f"UPDATE target ${clause.target_variable} must bind an "
                            f"element, got {target!r}"
                        )
                    bound.append(executor.bind(target, clause.operations, combo))
        # Phase 2: execute iteration by iteration.
        with span("xquery.execute"):
            for bound_update in bound:
                executor.execute(bound_update)
        operations = sum(_count_operations(item) for item in bound)
        registry.counter("xquery.operations").inc(operations)
        return UpdateResult(bindings=len(combos), operations=operations)

    def _execute_return(
        self,
        query: Query,
        combos: list[dict[str, Binding]],
        context: XPathContext,
    ) -> QueryResult:
        assert query.returns is not None
        result = QueryResult()
        seen: set[int] = set()
        for combo in combos:
            scoped = context.child(variables=combo)
            for node in evaluate_path(query.returns, scoped):
                if node.node_id not in seen:
                    seen.add(node.node_id)
                    result.nodes.append(node)
        return result


def _count_operations(bound: BoundUpdate) -> int:
    total = 0
    for step in bound.steps:
        if isinstance(step, BoundUpdate):
            total += _count_operations(step)
        else:
            total += 1
    return total
