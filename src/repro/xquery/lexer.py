"""XQuery lexer: the XPath token set plus embedded XML literals.

XML element constructors appear in the paper's update syntax as content
operands — ``INSERT <firstname>Jeff</firstname>`` — including the
abbreviated close tag ``</>`` (Example 4).  A ``<`` that opens an XML
literal is only legal directly after the keywords ``INSERT``, ``WITH``
or ``RETURN``, which makes extraction deterministic: at those points we
scan the balanced element text (normalising ``</>`` to the matching
close tag) and emit a single ``XML`` token carrying the raw markup.
"""

from __future__ import annotations

from repro.errors import XQueryError
from repro.xpath.lexer import Token

_XML_OPENERS = frozenset({"INSERT", "WITH", "RETURN"})


def tokenize_xquery(text: str) -> list[Token]:
    """Tokenize XQuery text, folding XML literals into single tokens."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if (
            ch == "<"
            and index + 1 < length
            and (text[index + 1].isalpha() or text[index + 1] == "_")
            and tokens
            and tokens[-1].type == "NAME"
            and tokens[-1].value in _XML_OPENERS
        ):
            literal, index = _extract_xml_literal(text, index)
            tokens.append(Token("XML", literal, index))
            continue
        # Delegate a single token to the XPath lexer by scanning a chunk.
        token, consumed = _scan_one(text, index)
        tokens.append(token)
        index = consumed
    tokens.append(Token("EOF", "", length))
    return tokens


_PUNCTUATION = (
    "->", "//", "!=", "<=", ">=", ":=",
    "/", ".", "@", "(", ")", "[", "]", "{", "}", ",", "*", "=", "<", ">",
)


def _scan_one(text: str, index: int) -> tuple[Token, int]:
    """Scan exactly one XPath-style token starting at ``index``."""
    length = len(text)
    ch = text[index]
    if ch in "\"'":
        end = text.find(ch, index + 1)
        if end == -1:
            raise XQueryError(f"unterminated string literal at offset {index}")
        return Token("STRING", text[index + 1 : end], index), end + 1
    if ch == "$":
        end = index + 1
        while end < length and (text[end].isalnum() or text[end] in "_-"):
            end += 1
        if end == index + 1:
            raise XQueryError(f"expected a variable name after '$' at offset {index}")
        return Token("VARIABLE", text[index + 1 : end], index), end
    if ch.isdigit():
        end = index
        while end < length and (text[end].isdigit() or text[end] == "."):
            end += 1
        if text[index:end].endswith("."):
            end -= 1
        return Token("NUMBER", text[index:end], index), end
    if ch.isalpha() or ch == "_":
        end = index
        while end < length and (text[end].isalnum() or text[end] in "_-"):
            if text[end] == "-" and end + 1 < length and text[end + 1] == ">":
                break
            end += 1
        return Token("NAME", text[index:end], index), end
    for punct in _PUNCTUATION:
        if text.startswith(punct, index):
            return Token(punct, punct, index), index + len(punct)
    raise XQueryError(f"illegal character {ch!r} at offset {index}")


def _extract_xml_literal(text: str, start: int) -> tuple[str, int]:
    """Scan a balanced XML element from ``start``; returns (markup, end).

    Normalises the paper's ``</>`` abbreviation by substituting the name
    of the innermost open element.
    """
    output: list[str] = []
    stack: list[str] = []
    index = start
    length = len(text)
    while index < length:
        ch = text[index]
        if ch != "<":
            output.append(ch)
            index += 1
            continue
        if text.startswith("</>", index):
            if not stack:
                raise XQueryError(f"'</>' with no open element at offset {index}")
            name = stack.pop()
            output.append(f"</{name}>")
            index += 3
        elif text.startswith("</", index):
            end = text.find(">", index)
            if end == -1:
                raise XQueryError(f"unterminated close tag at offset {index}")
            if not stack:
                raise XQueryError(f"unbalanced close tag at offset {index}")
            stack.pop()
            output.append(text[index : end + 1])
            index = end + 1
        else:
            tag_end, self_closing, name = _scan_open_tag(text, index)
            output.append(text[index:tag_end])
            if not self_closing:
                stack.append(name)
            index = tag_end
        if not stack:
            return "".join(output), index
    raise XQueryError(f"unterminated XML literal starting at offset {start}")


def _scan_open_tag(text: str, start: int) -> tuple[int, bool, str]:
    """Scan ``<name attr="v" ...>`` or ``<name .../>``; returns
    (end offset, self-closing?, name)."""
    index = start + 1
    length = len(text)
    name_start = index
    while index < length and (text[index].isalnum() or text[index] in "_:-."):
        index += 1
    name = text[name_start:index]
    if not name:
        raise XQueryError(f"expected an element name at offset {start}")
    while index < length:
        ch = text[index]
        if ch in "\"'":
            end = text.find(ch, index + 1)
            if end == -1:
                raise XQueryError(f"unterminated attribute value at offset {index}")
            index = end + 1
        elif ch == ">":
            self_closing = text[index - 1] == "/"
            return index + 1, self_closing, name
        else:
            index += 1
    raise XQueryError(f"unterminated open tag at offset {start}")
