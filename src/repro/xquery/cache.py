"""The process-wide XQuery statement cache: parse once, execute many.

Every read in the serving stack previously re-lexed and re-parsed its
statement text on every arrival, even though a production workload
repeats a small set of statement shapes thousands of times (the
Flux-style observation: update/query programs are static and amenable
to compile-once reuse).  This module caches parsed
:class:`~repro.xquery.ast.Query` ASTs in one bounded LRU keyed by

    (statement text, reference-policy fingerprint)

The policy fingerprint is part of the key because the same text parses
differently under different ID/IDREF classifications (constructed XML
content splits IDREFS attributes according to the policy).  Cached ASTs
are shared across threads and executions; that is safe because
execution never mutates the AST — constructed content is cloned per
use by the executors (and the Hypothesis equivalence suite in
``tests/property/test_cache_equivalence.py`` pins exactly this
property: cached-AST execution ≡ fresh-parse execution).

Hits, misses, and evictions are reported as ``cache.parse.*`` counters;
:func:`statement_cache_stats` returns the operator-facing snapshot the
service ``stats()`` call embeds.
"""

from __future__ import annotations

from typing import Optional

from repro.caching import LruCache
from repro.xmlmodel.policy import RefPolicy
from repro.xquery.ast import Query
from repro.xquery.parser import parse_query

#: Default bound: generous for realistic statement vocabularies, small
#: enough that an adversarial stream of unique statements stays cheap.
DEFAULT_STATEMENT_CACHE_SIZE = 512

_CACHE = LruCache(DEFAULT_STATEMENT_CACHE_SIZE, "parse")


def parse_cached(text: str, policy: Optional[RefPolicy] = None) -> Query:
    """Parse an XQuery statement through the statement cache.

    Semantically identical to :func:`~repro.xquery.parser.parse_query`;
    parse errors are never cached (the raise happens before any put).
    """
    policy = policy or RefPolicy.default()
    key = (text, policy.fingerprint())
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    query = parse_query(text, policy=policy)
    _CACHE.put(key, query)
    return query


def statement_cache_stats() -> dict:
    """Snapshot of the statement cache (capacity, entries, hit rate)."""
    return _CACHE.stats()


def clear_statement_cache() -> int:
    """Drop every cached AST (tests, policy hot-swaps); returns the count."""
    return _CACHE.clear()


def resize_statement_cache(capacity: int) -> None:
    """Re-bound the cache (0 disables caching entirely)."""
    _CACHE.resize(capacity)
