"""XQuery with the paper's update extensions (Section 4).

Typical use::

    from repro.xmlmodel import parse
    from repro.xquery import XQueryEngine

    engine = XQueryEngine({"bio.xml": parse(text, policy=policy)})
    engine.execute('''
        FOR $p IN document("bio.xml")/db/paper,
            $cat IN $p/@category
        UPDATE $p { DELETE $cat }
    ''')
"""

from repro.xquery.ast import Query, UpdateClause
from repro.xquery.cache import (
    clear_statement_cache,
    parse_cached,
    resize_statement_cache,
    statement_cache_stats,
)
from repro.xquery.engine import QueryResult, UpdateResult, XQueryEngine
from repro.xquery.lexer import tokenize_xquery
from repro.xquery.parser import parse_query

__all__ = [
    "Query",
    "QueryResult",
    "UpdateClause",
    "UpdateResult",
    "XQueryEngine",
    "clear_statement_cache",
    "parse_cached",
    "parse_query",
    "resize_statement_cache",
    "statement_cache_stats",
    "tokenize_xquery",
]
