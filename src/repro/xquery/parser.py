"""Recursive-descent parser for the FLWU/FLWR statement grammar.

Keywords (FOR, LET, WHERE, UPDATE, RETURN, DELETE, RENAME, INSERT,
REPLACE, WITH, TO, BEFORE, AFTER, IN) are matched case-insensitively —
the paper itself mixes ``FOR ... in ...``.  Path expressions and
predicates are delegated to the XPath parser over the shared token
stream; XML content literals arrive pre-lexed as single ``XML`` tokens
and are parsed into model elements with the supplied
:class:`~repro.xmlmodel.policy.RefPolicy` (which governs IDREF/IDREFS
splitting inside constructed content).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import XQueryError
from repro.updates.binding import LetClause
from repro.updates.content import RefContent
from repro.updates.operations import (
    Content,
    Delete,
    ForClause,
    Insert,
    InsertAfter,
    InsertBefore,
    Rename,
    Replace,
    SubUpdate,
    UpdateOp,
    VarOperand,
)
from repro.xmlmodel.model import Attribute
from repro.xmlmodel.parser import XmlParser
from repro.xmlmodel.policy import RefPolicy
from repro.xpath.ast import Expr
from repro.xpath.lexer import Token, TokenStream
from repro.xpath.parser import parse_expr_from, parse_path_from
from repro.xquery.ast import Clause, Query, UpdateClause
from repro.xquery.lexer import tokenize_xquery


def parse_query(text: str, policy: Optional[RefPolicy] = None) -> Query:
    """Parse an XQuery statement (query or update) into a :class:`Query`."""
    return _QueryParser(text, policy or RefPolicy.default()).parse()


class _QueryParser:
    def __init__(self, text: str, policy: RefPolicy) -> None:
        self._stream = TokenStream(tokenize_xquery(text))
        self._policy = policy

    # ------------------------------------------------------------------
    # Keyword helpers (case-insensitive)
    # ------------------------------------------------------------------
    def _at_keyword(self, word: str) -> bool:
        token = self._stream.peek()
        return token.type == "NAME" and token.value.upper() == word

    def _accept_keyword(self, word: str) -> bool:
        if self._at_keyword(word):
            self._stream.next()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            token = self._stream.peek()
            raise XQueryError(
                f"expected {word}, found {token.value!r} at offset {token.position}"
            )

    def _expect_variable(self, context: str) -> str:
        token = self._stream.peek()
        if token.type != "VARIABLE":
            raise XQueryError(
                f"expected a $variable in {context}, found {token.value!r} "
                f"at offset {token.position}"
            )
        self._stream.next()
        return token.value

    # ------------------------------------------------------------------
    # Statement structure
    # ------------------------------------------------------------------
    def parse(self) -> Query:
        clauses = self._parse_for_let_clauses()
        where = self._parse_where()
        updates: list[UpdateClause] = []
        while self._at_keyword("UPDATE"):
            updates.append(self._parse_update_clause())
        returns = None
        if self._accept_keyword("RETURN"):
            returns = parse_path_from(self._stream)
        if not updates and returns is None:
            raise XQueryError("statement has neither UPDATE clauses nor RETURN")
        if not self._stream.at_end():
            token = self._stream.peek()
            raise XQueryError(
                f"unexpected {token.value!r} after statement at offset {token.position}"
            )
        return Query(tuple(clauses), tuple(where), tuple(updates), returns)

    def _parse_for_let_clauses(self) -> list[Clause]:
        clauses: list[Clause] = []
        while True:
            if self._accept_keyword("FOR"):
                clauses.append(self._parse_for_binding())
                while self._stream.at(","):
                    self._stream.next()
                    clauses.append(self._parse_for_binding())
            elif self._accept_keyword("LET"):
                clauses.append(self._parse_let_binding())
                while self._stream.at(","):
                    self._stream.next()
                    clauses.append(self._parse_let_binding())
            else:
                return clauses

    def _parse_for_binding(self) -> ForClause:
        variable = self._expect_variable("FOR clause")
        self._expect_keyword("IN")
        path = parse_path_from(self._stream)
        return ForClause(variable, path)

    def _parse_let_binding(self) -> LetClause:
        variable = self._expect_variable("LET clause")
        self._stream.expect(":=", "LET clause")
        path = parse_path_from(self._stream)
        return LetClause(variable, path)

    def _parse_where(self) -> list[Expr]:
        predicates: list[Expr] = []
        if self._accept_keyword("WHERE"):
            predicates.append(parse_expr_from(self._stream))
            while self._stream.at(","):
                self._stream.next()
                predicates.append(parse_expr_from(self._stream))
        return predicates

    # ------------------------------------------------------------------
    # UPDATE clause and sub-operations
    # ------------------------------------------------------------------
    def _parse_update_clause(self) -> UpdateClause:
        self._expect_keyword("UPDATE")
        target = self._expect_variable("UPDATE clause")
        self._stream.expect("{", "UPDATE clause")
        operations = [self._parse_sub_operation()]
        while self._stream.at(","):
            self._stream.next()
            operations.append(self._parse_sub_operation())
        self._stream.expect("}", "UPDATE clause")
        return UpdateClause(target, tuple(operations))

    def _parse_sub_operation(self) -> UpdateOp:
        if self._accept_keyword("DELETE"):
            return Delete(VarOperand(self._expect_variable("DELETE")))
        if self._accept_keyword("RENAME"):
            child = VarOperand(self._expect_variable("RENAME"))
            self._expect_keyword("TO")
            token = self._stream.peek()
            if token.type not in ("NAME", "STRING"):
                raise XQueryError(
                    f"expected a name after TO, found {token.value!r} "
                    f"at offset {token.position}"
                )
            self._stream.next()
            return Rename(child, token.value)
        if self._accept_keyword("INSERT"):
            content = self._parse_content("INSERT")
            if self._accept_keyword("BEFORE"):
                anchor = VarOperand(self._expect_variable("INSERT ... BEFORE"))
                return InsertBefore(anchor, content)
            if self._accept_keyword("AFTER"):
                anchor = VarOperand(self._expect_variable("INSERT ... AFTER"))
                return InsertAfter(anchor, content)
            return Insert(content)
        if self._accept_keyword("REPLACE"):
            child = VarOperand(self._expect_variable("REPLACE"))
            self._expect_keyword("WITH")
            content = self._parse_content("REPLACE ... WITH")
            return Replace(child, content)
        if self._at_keyword("FOR"):
            return self._parse_nested_update()
        token = self._stream.peek()
        raise XQueryError(
            f"expected an update operation, found {token.value!r} "
            f"at offset {token.position}"
        )

    def _parse_nested_update(self) -> SubUpdate:
        self._expect_keyword("FOR")
        clauses = [self._parse_for_binding()]
        while self._stream.at(","):
            self._stream.next()
            clauses.append(self._parse_for_binding())
        predicates = tuple(self._parse_where())
        inner = self._parse_update_clause()
        return SubUpdate(tuple(clauses), predicates, inner.target_variable, inner.operations)

    def _parse_content(self, context: str) -> Content:
        token = self._stream.peek()
        if token.type == "XML":
            self._stream.next()
            document = XmlParser(token.value, policy=self._policy).parse()
            element = document.root
            element.parent = None
            return element
        if token.type == "STRING":
            self._stream.next()
            return token.value
        if token.type == "VARIABLE":
            self._stream.next()
            return VarOperand(token.value)
        if token.type == "NAME" and token.value == "new_attribute":
            self._stream.next()
            name, value = self._parse_constructor_args("new_attribute")
            return Attribute(name, value)
        if token.type == "NAME" and token.value == "new_ref":
            self._stream.next()
            label, target = self._parse_constructor_args("new_ref")
            return RefContent(label, target)
        raise XQueryError(
            f"expected content in {context}, found {token.value!r} "
            f"at offset {token.position}"
        )

    def _parse_constructor_args(self, name: str) -> tuple[str, str]:
        self._stream.expect("(", name)
        first = self._stream.peek()
        if first.type not in ("NAME", "STRING"):
            raise XQueryError(f"expected a name as the first argument of {name}")
        self._stream.next()
        self._stream.expect(",", name)
        second = self._stream.peek()
        if second.type not in ("NAME", "STRING", "NUMBER"):
            raise XQueryError(f"expected a value as the second argument of {name}")
        self._stream.next()
        self._stream.expect(")", name)
        return first.value, second.value
