"""Measurement protocol (Section 7).

"Each experiment consisted of a set of 5 runs with the results of the
first run discarded. Thus, each graph point represents the average time
for five runs" — and transactions were not committed between runs.  We
reproduce the protocol by snapshotting a loaded store once and running
the operation against a fresh snapshot per run (SQLite's backup API
makes the copy cheap), discarding the first run's time.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import counter_delta, get_registry
from repro.relational.store import XmlStore

#: Environment knob: set REPRO_BENCH_RUNS to change the per-point run
#: count (default 5, matching the paper; minimum 2 so one can be dropped).
DEFAULT_RUNS = 5


def configured_runs() -> int:
    value = os.environ.get("REPRO_BENCH_RUNS", "")
    if value.isdigit() and int(value) >= 2:
        return int(value)
    return DEFAULT_RUNS


@dataclass
class Measurement:
    """One graph point: a method's averaged time at one x value."""

    method: str
    x: float
    seconds: float
    client_statements: int
    trigger_statements: int
    runs: int

    @property
    def statements(self) -> int:
        return self.client_statements + self.trigger_statements


@dataclass
class ExperimentRunner:
    """Runs operations against fresh snapshots of a master store."""

    master: XmlStore
    runs: int = field(default_factory=configured_runs)

    def measure(
        self,
        method: str,
        x: float,
        operation: Callable[[XmlStore], None],
    ) -> Measurement:
        """Time ``operation`` per the paper's protocol.

        ``operation`` receives a fresh snapshot each run and may mutate
        it freely.  Statement counts come from the last run (they are
        deterministic across runs) and are sourced from the process
        metrics registry by diffing snapshots around the operation, so
        the numbers reported are exactly what the instrumentation saw.
        """
        times: list[float] = []
        client_statements = 0
        trigger_statements = 0
        registry = get_registry()
        for _ in range(self.runs):
            # The context manager closes the snapshot's connection even
            # when the operation raises (snapshots used to leak here).
            with self.master.snapshot() as store:
                before = registry.snapshot()
                start = time.perf_counter()
                operation(store)
                elapsed = time.perf_counter() - start
                times.append(elapsed)
                after = registry.snapshot()
                client_statements = counter_delta(before, after, "sql.statements.client")
                trigger_statements = counter_delta(before, after, "sql.statements.trigger")
        averaged = times[1:] if len(times) > 1 else times
        return Measurement(
            method=method,
            x=x,
            seconds=sum(averaged) / len(averaged),
            client_statements=client_statements,
            trigger_statements=trigger_statements,
            runs=self.runs,
        )
