"""Mapping ablation: the interval (pre/post) mapping as a fourth column.

Three series over the same fixed synthetic documents:

* **delete** — bulk (the first *half* of the ``n1`` subtrees: one
  contiguous batch, the coalescing case — deleting literally every row
  would let any mapping win by table truncation) and random (ten
  subtrees) deletes under shared inlining (store, per-statement
  triggers), Edge, Attribute, and Interval.  The interval mapping fuses
  the batch into a single ranged ``DELETE`` instead of per-level orphan
  sweeps, which is the acceptance case it must win.
* **insert** — positional inserts at a fixed hot spot *inside* one
  subtree, across growing document sizes.  With gapped ordinals the
  renumber scope is the enclosing subtree, not the document, so
  statements per insert stay flat as the document grows (the
  sub-linearity evidence; ``interval.renumber.*`` counters are
  recorded alongside).
* **read** — reconstruct every ``n1`` subtree (Attribute is skipped:
  it fragments elements across per-attribute tables and offers no
  reconstruction path — the paper's argument against it).

Results land under the ``"mapping"`` key of ``BENCH_service.json`` via
:func:`save_mapping_results` (read-modify-write, so the service series
in the same file survive).
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Sequence

from repro.bench.experiments import build_fixed_store, random_subtree_ids
from repro.bench.harness import Measurement
from repro.obs import counter_delta, get_registry
from repro.relational.attribute_map import AttributeMapping
from repro.relational.edge import EdgeMapping
from repro.relational.interval import IntervalMapping
from repro.workloads.synthetic import SyntheticParams, generate_fixed
from repro.xmlmodel.model import Element, Text

#: Document shape shared by the delete and read series (matches the
#: existing mapping ablation in ``benchmarks/``).
DELETE_PARAMS = SyntheticParams(scaling_factor=100, depth=4, fanout=2)
SMOKE_DELETE_PARAMS = SyntheticParams(scaling_factor=16, depth=3, fanout=2)

#: Scaling factors for the insert series: the document grows 8x end to
#: end while the insert hot spot stays inside the first subtree.
INSERT_SIZES = (50, 100, 200, 400)
SMOKE_INSERT_SIZES = (16, 48)
INSERTS_PER_POINT = 40
SMOKE_INSERTS_PER_POINT = 10

RANDOM_SUBTREES = 10
RUNS = 3  # first discarded, like the paper's protocol


@dataclass
class MappingPoint:
    """One measured point of one mapping in one series."""

    series: str  # delete_bulk | delete_random | insert | read
    mapping: str
    x: float  # subtree count (delete/read) or total objects (insert)
    seconds: float
    statements: int
    extra: dict = field(default_factory=dict)

    def as_measurement(self) -> Measurement:
        return Measurement(
            method=f"{self.series}:{self.mapping}",
            x=self.x,
            seconds=self.seconds,
            client_statements=self.statements,
            trigger_statements=0,
            runs=RUNS,
        )


def _measure(
    setup: Callable[[], tuple],
    operation: Callable,
    runs: int = RUNS,
    close: bool = True,
):
    """Paper protocol at mapping granularity: fresh state per run, first
    run discarded; statements counted on the last run."""
    times: list[float] = []
    statements = 0
    for _ in range(runs):
        args = setup()
        db = args[0].db if hasattr(args[0], "db") else args[0]
        db.counts.reset()
        start = time.perf_counter()
        operation(*args)
        times.append(time.perf_counter() - start)
        statements = db.counts.client + db.counts.trigger_emulation
        if close:
            closer = getattr(args[0], "close", None)
            if closer is not None:
                closer()
    averaged = times[1:] if len(times) > 1 else times
    return sum(averaged) / len(averaged), statements


# ----------------------------------------------------------------------
# Delete series
# ----------------------------------------------------------------------
def _delete_point_store(params, bulk: bool, runs: int) -> MappingPoint:
    master = build_fixed_store(params)
    master.set_delete_method("per_statement_trigger")
    roots = sorted(row[0] for row in master.db.query('SELECT id FROM "n1"'))
    half = roots[: len(roots) // 2]
    random_ids = random_subtree_ids(master, "n1", RANDOM_SUBTREES)
    try:

        def operation(store):
            if bulk:
                # Ids are DFS-allocated, so the first half of the roots
                # is one contiguous id (and document) region.
                store.delete_subtrees("n1", '"n1".id <= ?', (half[-1],))
            else:
                for subtree_id in random_ids:
                    store.delete_subtrees("n1", '"n1".id = ?', (subtree_id,))

        seconds, statements = _measure(
            lambda: (master.snapshot(),), operation, runs
        )
    finally:
        master.close()
    count = len(half) if bulk else min(RANDOM_SUBTREES, params.scaling_factor)
    return MappingPoint(
        "delete_bulk" if bulk else "delete_random",
        "inlining", count, seconds, statements,
    )


def _delete_point_mapping(
    name: str, mapping_class, document, bulk: bool, runs: int
) -> MappingPoint:
    count = 0

    def setup():
        mapping = mapping_class()
        mapping.load(document)
        ids = mapping.element_ids("n1")
        if bulk:
            ids = ids[: len(ids) // 2]  # contiguous first half
        else:
            # Scattered picks (same fixed seed as the store path) so the
            # interval mapping cannot simply coalesce them into one range.
            ids = random.Random(42).sample(ids, min(RANDOM_SUBTREES, len(ids)))
        nonlocal count
        count = len(ids)
        return mapping, ids

    def operation(mapping, ids):
        # One batched call in both workloads (the existing mapping
        # ablation's shape); bulk just passes every subtree.
        mapping.delete_subtrees(ids)

    seconds, statements = _measure(setup, operation, runs)
    return MappingPoint(
        "delete_bulk" if bulk else "delete_random",
        name, count, seconds, statements,
    )


def run_delete_series(params=DELETE_PARAMS, runs: int = RUNS) -> list[MappingPoint]:
    document = generate_fixed(params)
    points = []
    for bulk in (True, False):
        points.append(_delete_point_store(params, bulk, runs))
        for name, mapping_class in (
            ("edge", EdgeMapping),
            ("attribute", AttributeMapping),
            ("interval", IntervalMapping),
        ):
            points.append(
                _delete_point_mapping(name, mapping_class, document, bulk, runs)
            )
    return points


# ----------------------------------------------------------------------
# Insert series (sub-linearity of positional inserts)
# ----------------------------------------------------------------------
def _insert_content() -> Element:
    element = Element("n2")
    child = Element("str")
    child.append_child(Text("x" * 10))
    element.append_child(child)
    return element


def run_insert_series(
    sizes: Sequence[int] = INSERT_SIZES,
    inserts: int = INSERTS_PER_POINT,
    depth: int = 4,
    fanout: int = 2,
) -> list[MappingPoint]:
    """Hot-spot positional inserts on the interval mapping across
    document sizes.  x is the total object count before inserting."""
    registry = get_registry()
    points = []
    for scaling_factor in sizes:
        document = generate_fixed(SyntheticParams(scaling_factor, depth, fanout))
        mapping = IntervalMapping()
        mapping.load(document)
        # The hot spot: always before the first n2 of the first subtree,
        # so every renumber is scoped to that subtree.
        anchor = mapping.element_ids("n2")[0]
        size = mapping.count()
        before = registry.snapshot()
        mapping.db.counts.reset()
        start = time.perf_counter()
        for _ in range(inserts):
            mapping.insert_subtree(_insert_content(), before_id=anchor)
        seconds = time.perf_counter() - start
        statements = mapping.db.counts.client
        after = registry.snapshot()
        points.append(
            MappingPoint(
                "insert",
                "interval",
                size,
                seconds,
                statements,
                extra={
                    "inserts": inserts,
                    "statements_per_insert": statements / inserts,
                    "renumber_events": counter_delta(
                        before, after, "interval.renumber.count"
                    ),
                    "renumbered_nodes": counter_delta(
                        before, after, "interval.renumber.nodes"
                    ),
                },
            )
        )
    return points


# ----------------------------------------------------------------------
# Read series
# ----------------------------------------------------------------------
def run_read_series(params=DELETE_PARAMS, runs: int = RUNS) -> list[MappingPoint]:
    document = generate_fixed(params)
    points = []

    master = build_fixed_store(params)
    try:
        query = 'FOR $s IN document("synthetic.xml")/root/n1 RETURN $s'

        def read_store(store):
            results = store.query(query)
            assert len(results) == params.scaling_factor

        seconds, statements = _measure(
            lambda: (master,), read_store, runs, close=False
        )
    finally:
        master.close()
    points.append(
        MappingPoint("read", "inlining", params.scaling_factor, seconds, statements)
    )

    for name, mapping_class in (("edge", EdgeMapping), ("interval", IntervalMapping)):
        mapping = mapping_class()
        mapping.load(document)
        ids = mapping.element_ids("n1")

        def read_mapping(mapping, ids):
            for element_id in ids:
                mapping.reconstruct(element_id)

        seconds, statements = _measure(lambda: (mapping, ids), read_mapping, runs)
        points.append(MappingPoint("read", name, len(ids), seconds, statements))
    return points


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_mapping_benchmark(smoke: bool = False) -> list[MappingPoint]:
    if smoke:
        return (
            run_delete_series(SMOKE_DELETE_PARAMS, runs=2)
            + run_insert_series(SMOKE_INSERT_SIZES, SMOKE_INSERTS_PER_POINT, depth=3)
            + run_read_series(SMOKE_DELETE_PARAMS, runs=2)
        )
    return run_delete_series() + run_insert_series() + run_read_series()


def save_mapping_results(path: str, points: list[MappingPoint]) -> None:
    """Merge the mapping series into ``BENCH_service.json`` without
    disturbing the service/recovery/net/read series already there."""
    payload = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload["mapping"] = {
        "experiment": "storage mapping ablation: inlining vs edge vs attribute vs interval",
        "workload": (
            "bulk/random subtree deletes, hot-spot positional inserts "
            "(interval only), full n1 subtree reads"
        ),
        "points": [asdict(point) for point in points],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
