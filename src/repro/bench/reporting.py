"""Paper-style reporting of experiment results.

``format_series`` renders a figure's measurements as the series the
paper plots (one line per method, one column per x value);
``save_results`` persists raw measurements as JSON so EXPERIMENTS.md can
reference exact numbers.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from repro.bench.harness import Measurement


def format_series(
    title: str,
    x_label: str,
    measurements: Sequence[Measurement],
    show_statements: bool = False,
) -> str:
    """Render measurements grouped by method, one row per method."""
    xs = sorted({m.x for m in measurements})
    methods = []
    for measurement in measurements:
        if measurement.method not in methods:
            methods.append(measurement.method)
    by_key = {(m.method, m.x): m for m in measurements}
    header = [f"{x_label}:"] + [_format_x(x) for x in xs]
    lines = [title, "  " + "  ".join(f"{cell:>12}" for cell in header)]
    for method in methods:
        cells = [f"{method}:"]
        for x in xs:
            measurement = by_key.get((method, x))
            if measurement is None:
                cells.append("-")
            elif show_statements:
                cells.append(f"{measurement.seconds:.4f}s/{measurement.statements}st")
            else:
                cells.append(f"{measurement.seconds:.4f}s")
        lines.append("  " + "  ".join(f"{cell:>12}" for cell in cells))
    return "\n".join(lines)


def _format_x(x: float) -> str:
    return str(int(x)) if float(x).is_integer() else f"{x:g}"


def save_results(
    path: str, experiment: str, measurements: Iterable[Measurement]
) -> None:
    """Append measurements for one experiment into a JSON results file."""
    payload = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload[experiment] = [
        {
            "method": m.method,
            "x": m.x,
            "seconds": m.seconds,
            "client_statements": m.client_statements,
            "trigger_statements": m.trigger_statements,
            "runs": m.runs,
        }
        for m in measurements
    ]
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
