"""Standalone evaluation runner: ``python -m repro.bench``.

Regenerates the paper's figures and tables without pytest, printing the
paper-style series as it goes.  Options::

    python -m repro.bench                 # every experiment, quick sizes
    python -m repro.bench --only fig7 table2
    python -m repro.bench --full          # paper-size sweeps
    python -m repro.bench --runs 3        # measurement runs per point
    python -m repro.bench --json out.json # persist raw numbers
    python -m repro.bench --trace-out spans.json   # per-phase trace spans
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import (
    ALL_DELETE_STRATEGIES,
    INSERT_STRATEGIES,
    build_dblp_store,
    build_fixed_store,
    build_randomized_store,
    delete_series,
    insert_series,
    path_expression_comparison,
    random_subtree_ids,
)
from repro.bench.harness import ExperimentRunner
from repro.bench.reporting import format_series, save_results
from repro.workloads.dblp import DblpParams
from repro.workloads.synthetic import SyntheticParams


def run_sf_sweep(workload: str, runs: int) -> list:
    measurements = []
    for scaling_factor in (100, 200, 400, 800):
        master = build_fixed_store(SyntheticParams(scaling_factor, 8, 1))
        runner = ExperimentRunner(master, runs=runs)
        measurements += delete_series(
            master, scaling_factor, workload, runner=runner
        )
        master.close()
    return measurements


def run_depth_sweep(workload: str, operation: str, runs: int, full: bool) -> list:
    measurements = []
    for depth in range(1, 7 if full else 6):
        master = build_fixed_store(SyntheticParams(100, depth, 4))
        runner = ExperimentRunner(master, runs=runs)
        if operation == "delete":
            measurements += delete_series(master, depth, workload, runner=runner)
        else:
            measurements += insert_series(master, depth, workload, runner=runner)
        master.close()
    return measurements


def run_sec72(runs: int, full: bool) -> dict[str, list]:
    results: dict[str, list] = {}
    for fanout in (1, 4):
        depth = 6 if full else 5
        master = build_fixed_store(SyntheticParams(100, depth, fanout))
        measurements = []
        for length in (3, 4, 5):
            pair = path_expression_comparison(master, length, runs=runs)
            measurements += [pair["joins"], pair["asr"]]
        results[f"Section 7.2 (fanout={fanout})"] = measurements
        master.close()
    return results


def run_sec73(runs: int) -> dict[str, list]:
    results: dict[str, list] = {}
    master = build_randomized_store(SyntheticParams(100, 5, 4))
    runner = ExperimentRunner(master, runs=runs)
    for workload in ("bulk", "random"):
        results[f"Section 7.3 randomized synthetic ({workload})"] = delete_series(
            master, 0, workload, methods=ALL_DELETE_STRATEGIES, runner=runner
        )
    master.close()
    return results


def run_table2(runs: int, full: bool) -> dict[str, list]:
    master = build_dblp_store(DblpParams(conferences=400 if full else 60))
    runner = ExperimentRunner(master, runs=runs)
    results: dict[str, list] = {}
    deletes = []
    for method in ALL_DELETE_STRATEGIES:
        master.set_delete_method(method)
        deletes.append(
            runner.measure(
                method,
                0,
                lambda store: store.delete_subtrees(
                    "publication", '"publication"."year" = ?', ("2000",)
                ),
            )
        )
    results["Table 2: DBLP delete (year 2000)"] = deletes
    root_id = master.db.query_one('SELECT id FROM "dblp"')[0]
    ids = random_subtree_ids(master, "conference")
    inserts = []
    for method in INSERT_STRATEGIES:
        master.set_insert_method(method)

        def operation(store):
            for conference_id in ids:
                store.copy_subtrees(
                    "conference", '"conference".id = ?', (conference_id,), root_id
                )

        inserts.append(runner.measure(method, 0, operation))
    results["Table 2: DBLP insert (10 conference subtrees)"] = inserts
    master.close()
    return results


def run_service() -> list:
    from repro.bench.service_bench import run_service_benchmark

    master = build_fixed_store(SyntheticParams(400, 3, 2))
    master.set_delete_method("per_statement_trigger")
    try:
        points = run_service_benchmark(master)
    finally:
        master.close()
    return [point.as_measurement() for point in points]


def run_recovery() -> list:
    from repro.bench.service_bench import run_recovery_benchmark

    return [point.as_measurement() for point in run_recovery_benchmark()]


def run_net(smoke: bool = False) -> list:
    from repro.bench.service_bench import (
        run_async_net_benchmark,
        run_net_benchmark,
    )

    if smoke:
        # Loopback liveness check (CI): tiny fixed work, and a small
        # connection sweep exercising the asyncio server.
        points = run_net_benchmark(ops=24)
        pipeline, connection = run_async_net_benchmark(
            depths=(1, 16),
            pipeline_ops=48,
            connection_counts=(50,),
            pings=10,
        )
    else:
        points = run_net_benchmark()
        pipeline, connection = run_async_net_benchmark()
    for point in points:
        print(
            f"  net[{point.transport}]: {point.ops_per_second:.0f} ops/s "
            f"p50={point.p50_ms:.2f}ms p99={point.p99_ms:.2f}ms"
        )
    for point in pipeline:
        print(
            f"  net[pipeline depth={point.depth}]: "
            f"{point.ops_per_second:.0f} ops/s "
            f"p50={point.p50_ms:.2f}ms p99={point.p99_ms:.2f}ms"
        )
    for point in connection:
        print(
            f"  net[connections={point.connections}]: "
            f"connect={point.connect_seconds:.2f}s "
            f"ping p50={point.ping_p50_ms:.2f}ms "
            f"p99={point.ping_p99_ms:.2f}ms"
        )
    return [
        point.as_measurement()
        for point in [*points, *pipeline, *connection]
    ]


def run_mapping(smoke: bool = False, json_path: str | None = None) -> list:
    from repro.bench.mapping_bench import run_mapping_benchmark, save_mapping_results

    points = run_mapping_benchmark(smoke=smoke)
    if json_path:
        save_mapping_results(json_path, points)
    for point in points:
        extra = ""
        if point.extra:
            extra = "  " + " ".join(f"{k}={v}" for k, v in sorted(point.extra.items()))
        print(
            f"  {point.series}[{point.mapping}] x={point.x:g}: "
            f"{point.seconds:.4f}s {point.statements}st{extra}"
        )
    return [point.as_measurement() for point in points]


def run_read(smoke: bool = False) -> list:
    from repro.bench.service_bench import run_read_benchmark

    master = build_fixed_store(SyntheticParams(400, 3, 1))
    master.set_delete_method("per_statement_trigger")
    try:
        if smoke:
            # Loopback liveness check (CI): tiny fixed work, TCP only.
            points = run_read_benchmark(
                master, threads_series=(1, 2), transports=("tcp",), cycles=4
            )
        else:
            points = run_read_benchmark(master)
    finally:
        master.close()
    for point in points:
        print(
            f"  read[{point.transport} x{point.threads}]: "
            f"{point.read_ops_per_second:.0f} reads/s "
            f"p50={point.p50_ms:.2f}ms p99={point.p99_ms:.2f}ms "
            f"parse-hit={point.parse_hit_rate:.0%} "
            f"plan-hit={point.plan_hit_rate:.0%} "
            f"pool-reads={point.pool_reads}"
        )
    return [point.as_measurement() for point in points]


def run_checkpoint(smoke: bool = False) -> list:
    from repro.bench.service_bench import (
        DEFAULT_CHECKPOINT_OPS,
        run_checkpoint_benchmark,
    )

    points = run_checkpoint_benchmark(ops=32 if smoke else DEFAULT_CHECKPOINT_OPS)
    for point in points:
        print(
            f"  checkpoint[{point.mode}]: "
            f"{point.ops_per_second:.0f} ops/s "
            f"p50={point.p50_ms:.2f}ms p99={point.p99_ms:.2f}ms "
            f"checkpoints={point.checkpoints} "
            f"snapshotted={point.docs_snapshotted} "
            f"carried={point.docs_carried}"
        )
    return [point.as_measurement() for point in points]


def run_shards(smoke: bool = False, json_path: str | None = None) -> list:
    from repro.bench.service_bench import run_shards_benchmark, save_shards_results

    if smoke:
        # Liveness check (CI): two tiny clusters, enough to prove the
        # router + worker processes round-trip end to end.
        points = run_shards_benchmark(shard_counts=(1, 2), ops=48, docs=4, depth=2)
    else:
        points = run_shards_benchmark()
    if json_path:
        save_shards_results(json_path, points)
    for point in points:
        print(
            f"  shards[{point.shards}] (cpus={point.cpus}): "
            f"{point.ops_per_second:.0f} ops/s "
            f"p50={point.p50_ms:.2f}ms p99={point.p99_ms:.2f}ms"
        )
    return [point.as_measurement() for point in points]


EXPERIMENTS = {
    "fig6": ("Figure 6: delete, bulk (f=1, d=8)", "sf"),
    "fig7": ("Figure 7: delete, random (f=1, d=8)", "sf"),
    "fig8": ("Figure 8: delete, bulk (sf=100, f=4)", "depth"),
    "fig9": ("Figure 9: delete, random (sf=100, f=4)", "depth"),
    "fig10": ("Figure 10: insert, bulk (sf=100, f=4)", "depth"),
    "fig11": ("Figure 11: insert, random (sf=100, f=4)", "depth"),
    "sec72": ("Section 7.2: ASR path expressions", "path len"),
    "sec73": ("Section 7.3: randomized synthetic", "-"),
    "table2": ("Table 2: DBLP", "-"),
    "service": ("Service: group-commit delete throughput", "batch"),
    "recovery": ("Service: cold recovery time vs WAL length", "ops"),
    "net": ("Service: transports, pipeline depths, connection scaling", "x"),
    "read": ("Service: read-path thread scaling (caches + reader pool)", "threads"),
    "checkpoint": ("Service: submit latency during fuzzy checkpoints", "ops"),
    "mapping": ("Ablation: interval vs inlining/edge/attribute mappings", "-"),
    "shards": ("Service: shard-per-core router write scaling", "shards"),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench", description=__doc__)
    parser.add_argument("--only", nargs="*", choices=sorted(EXPERIMENTS),
                        help="run a subset of experiments")
    parser.add_argument("--full", action="store_true", help="paper-size sweeps")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny liveness sizes (read: 2 loopback points, 4 cycles; "
        "net: short sweeps + a 50-connection async fleet)",
    )
    parser.add_argument("--runs", type=int, default=5,
                        help="runs per point (first discarded; default 5)")
    parser.add_argument("--json", help="write raw measurements to this file")
    parser.add_argument(
        "--trace-out", help="write hierarchical trace spans (JSON) here on exit"
    )
    args = parser.parse_args(argv)
    selected = set(args.only or EXPERIMENTS)
    tracer = None
    if args.trace_out:
        from repro.obs import get_tracer

        tracer = get_tracer()
        tracer.start_capture()

    def emit(title: str, x_label: str, measurements) -> None:
        print(format_series(title, x_label, measurements, show_statements=True))
        print()
        if args.json:
            save_results(args.json, title, measurements)

    if "fig6" in selected:
        emit(*EXPERIMENTS["fig6"], run_sf_sweep("bulk", args.runs))
    if "fig7" in selected:
        emit(*EXPERIMENTS["fig7"], run_sf_sweep("random", args.runs))
    if "fig8" in selected:
        emit(*EXPERIMENTS["fig8"],
             run_depth_sweep("bulk", "delete", args.runs, args.full))
    if "fig9" in selected:
        emit(*EXPERIMENTS["fig9"],
             run_depth_sweep("random", "delete", args.runs, args.full))
    if "fig10" in selected:
        emit(*EXPERIMENTS["fig10"],
             run_depth_sweep("bulk", "insert", args.runs, args.full))
    if "fig11" in selected:
        emit(*EXPERIMENTS["fig11"],
             run_depth_sweep("random", "insert", args.runs, args.full))
    if "sec72" in selected:
        for title, measurements in run_sec72(args.runs, args.full).items():
            emit(title, "path len", measurements)
    if "sec73" in selected:
        for title, measurements in run_sec73(args.runs).items():
            emit(title, "-", measurements)
    if "table2" in selected:
        for title, measurements in run_table2(args.runs, args.full).items():
            emit(title, "-", measurements)
    if "service" in selected:
        emit(*EXPERIMENTS["service"], run_service())
    if "recovery" in selected:
        emit(*EXPERIMENTS["recovery"], run_recovery())
    if "net" in selected:
        emit(*EXPERIMENTS["net"], run_net(smoke=args.smoke))
    if "read" in selected:
        emit(*EXPERIMENTS["read"], run_read(smoke=args.smoke))
    if "checkpoint" in selected:
        emit(*EXPERIMENTS["checkpoint"], run_checkpoint(smoke=args.smoke))
    if "mapping" in selected:
        emit(*EXPERIMENTS["mapping"],
             run_mapping(smoke=args.smoke, json_path=args.json))
    if "shards" in selected:
        emit(*EXPERIMENTS["shards"],
             run_shards(smoke=args.smoke, json_path=args.json))
    if tracer is not None:
        tracer.stop_capture()
        written = tracer.write_json(args.trace_out)
        print(f"-- wrote {written} trace span(s) to {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
