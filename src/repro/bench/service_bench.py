"""Group-commit throughput experiment for the durable update service.

The service amortizes two per-update costs across a batch: the WAL
fsync (one per group commit instead of one per update) and the SQL
statement count (adjacent single-subtree deletes coalesce into one
``DELETE ... WHERE id IN (...)``, so a per-statement trigger sweeps
once per batch instead of once per update).  This experiment submits a
fixed stream of single-subtree deletes through the service at several
batch sizes and reports updates/second plus the statement counters.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import asdict, dataclass

from repro.bench.harness import Measurement
from repro.obs import counter_delta, get_registry
from repro.relational.store import XmlStore
from repro.service import DeltaUpdate, ServiceConfig, SubtreeDelete, UpdateService
from repro.service.wal import list_segments
from repro.updates.delta import InsertNode, SetAttribute
from repro.xmlmodel.parser import XmlParser

#: Group-commit windows compared by the experiment (and BENCH_service.json).
DEFAULT_BATCH_SIZES = (1, 8, 64)
#: Deletes submitted per point; a multiple of every batch size above.
DEFAULT_UPDATES = 192
#: Log lengths (operations) compared by the recovery experiment.
DEFAULT_RECOVERY_OPS = (64, 128, 256)
#: Synchronous round-trips per transport in the network experiment.
DEFAULT_NET_OPS = 160
#: Pipeline depths compared by the async pipelining experiment.
DEFAULT_PIPELINE_DEPTHS = (1, 4, 16)
#: Durable appends per pipeline point (identical work at every depth).
DEFAULT_PIPELINE_OPS = 192
#: Concurrent idle connection counts for the connection-scaling curve.
DEFAULT_CONNECTION_COUNTS = (100, 500, 1000)
#: Round-trips measured per connection point (with the idle fleet up).
DEFAULT_CONNECTION_PINGS = 50
#: Appends per phase of the checkpoint-interference experiment.
DEFAULT_CHECKPOINT_OPS = 160
#: Documents hosted by the checkpoint experiment (one hot, rest idle).
DEFAULT_CHECKPOINT_DOCS = 4
#: Client-thread counts compared by the read experiment.
DEFAULT_READ_THREADS = (1, 2, 4, 8)
#: Total read/write cycles per read point (split across the clients, so
#: every point performs identical total work).
DEFAULT_READ_CYCLES = 32
#: Queries per cycle; one durable write follows each run of reads.
DEFAULT_READS_PER_CYCLE = 8
#: Distinct statement texts the read workload cycles through — small on
#: purpose: production statement vocabularies repeat, which is what the
#: statement/plan caches exploit (hit rates are part of the measurement).
DEFAULT_READ_STATEMENTS = 4
#: Shard counts compared by the shard-per-core scaling experiment.
DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
#: Durable appends per shard point (identical total work at every count).
DEFAULT_SHARD_OPS = 256
#: Documents hosted by the shard experiment (spread across the shards).
DEFAULT_SHARD_DOCS = 16
#: In-flight appends per shard the driving client keeps pipelined.
DEFAULT_SHARD_DEPTH = 4


@dataclass
class ServicePoint:
    """Throughput and per-phase cost of one batch-size configuration.

    All counters are sourced from the process metrics registry
    (``repro.obs``) by diffing snapshots around the run — the same
    numbers ``python -m repro stats`` reports — rather than from
    per-connection ``Database`` fields.
    """

    batch_size: int
    updates: int
    seconds: float
    updates_per_second: float
    client_statements: int
    trigger_statements: int
    client_statements_per_update: float
    fsyncs: int = 0
    batches: int = 0
    mean_batch_size: float = 0.0

    def as_measurement(self) -> Measurement:
        return Measurement(
            method="group_commit",
            x=self.batch_size,
            seconds=self.seconds,
            client_statements=self.client_statements,
            trigger_statements=self.trigger_statements,
            runs=1,
        )


def _delete_targets(store: XmlStore, count: int) -> list[int]:
    rows = store.db.query('SELECT id FROM "n1" ORDER BY id')
    if len(rows) < count:
        raise ValueError(
            f"workload has {len(rows)} n1 subtrees; {count} needed "
            "(increase the scaling factor)"
        )
    return [row[0] for row in rows[:count]]


def run_point(
    master: XmlStore,
    batch_size: int,
    updates: int = DEFAULT_UPDATES,
    wal_dir: str | None = None,
) -> ServicePoint:
    """Push ``updates`` single-subtree deletes through one service."""
    registry = get_registry()
    with master.snapshot() as store:
        ids = _delete_targets(store, updates)
        wal_path = None
        if wal_dir is not None:
            wal_path = os.path.join(wal_dir, f"service-batch{batch_size}.wal")
        # A short coalesce window keeps batches full (and the statement
        # counts reproducible) without dominating the measured time.
        service = UpdateService(
            ServiceConfig(
                wal_path=wal_path,
                batch_size=batch_size,
                coalesce_wait=0.01 if batch_size > 1 else 0.0,
            )
        )
        service.host_store("bench.xml", store)
        service.start()
        before = registry.snapshot()
        start = time.perf_counter()
        tickets = [
            service.submit(SubtreeDelete("bench.xml", "n1", (subtree_id,)))
            for subtree_id in ids
        ]
        service.flush(timeout=120)
        for ticket in tickets:
            ticket.wait(120)
        elapsed = time.perf_counter() - start
        after = registry.snapshot()
        service.close()
    client = counter_delta(before, after, "sql.statements.client")
    trigger = counter_delta(before, after, "sql.statements.trigger")
    fsyncs = counter_delta(before, after, "wal.fsyncs")
    batches = counter_delta(before, after, "batcher.batches")
    batch_count = counter_delta(before, after, "batcher.ops.applied")
    return ServicePoint(
        batch_size=batch_size,
        updates=updates,
        seconds=elapsed,
        updates_per_second=updates / elapsed if elapsed else float("inf"),
        client_statements=client,
        trigger_statements=trigger,
        client_statements_per_update=client / updates,
        fsyncs=fsyncs,
        batches=batches,
        mean_batch_size=batch_count / batches if batches else 0.0,
    )


def run_service_benchmark(
    master: XmlStore,
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    updates: int = DEFAULT_UPDATES,
    wal_dir: str | None = None,
) -> list[ServicePoint]:
    return [
        run_point(master, batch_size, updates=updates, wal_dir=wal_dir)
        for batch_size in batch_sizes
    ]


@dataclass
class RecoveryPoint:
    """Cold-start recovery cost for one log length.

    ``checkpointed`` marks the variant where a checkpoint ran after the
    last operation: the snapshot absorbs the whole log, the covered
    segments are retired, and recovery cost stops tracking the total
    operation count — it is bounded by the post-checkpoint log length.
    """

    ops: int
    checkpointed: bool
    wal_bytes: int
    recovery_seconds: float
    applied: int
    snapshot_docs: int

    def as_measurement(self) -> Measurement:
        return Measurement(
            method="recover+ckpt" if self.checkpointed else "recover",
            x=self.ops,
            seconds=self.recovery_seconds,
            client_statements=0,
            trigger_statements=0,
            runs=1,
        )


def run_recovery_point(
    wal_dir: str, ops: int, checkpoint: bool = False
) -> RecoveryPoint:
    """Log ``ops`` document appends (checkpointing at the end when asked),
    then time a cold ``recover()`` on a fresh service over the same WAL."""
    suffix = "-ckpt" if checkpoint else ""
    wal_path = os.path.join(wal_dir, f"recovery-{ops}{suffix}.wal")
    service = UpdateService(
        ServiceConfig(wal_path=wal_path, batch_size=16, coalesce_wait=0.002)
    )
    service.host_document("bench.xml", XmlParser("<log></log>").parse())
    service.start()
    for index in range(ops):
        service.submit_wait(
            DeltaUpdate(
                "bench.xml", (InsertNode((), 1 << 30, xml=f'<e i="{index}"/>'),)
            ),
            timeout=120,
        )
    if checkpoint:
        service.checkpoint(timeout=120)
    service.close()
    wal_bytes = sum(
        os.path.getsize(path) for _index, path in list_segments(wal_path)
    )

    fresh = UpdateService(ServiceConfig(wal_path=wal_path))
    fresh.host_document("bench.xml", XmlParser("<log></log>").parse())
    start = time.perf_counter()
    report = fresh.recover()
    elapsed = time.perf_counter() - start
    fresh.close()
    return RecoveryPoint(
        ops=ops,
        checkpointed=checkpoint,
        wal_bytes=wal_bytes,
        recovery_seconds=elapsed,
        applied=report.applied,
        snapshot_docs=report.snapshot_docs,
    )


def run_recovery_benchmark(
    wal_dir: str | None = None,
    ops_series: tuple[int, ...] = DEFAULT_RECOVERY_OPS,
) -> list[RecoveryPoint]:
    """Recovery time at several log lengths, plus the checkpointed variant
    of the longest one showing the bounded-recovery property."""

    def run_all(directory: str) -> list[RecoveryPoint]:
        points = [
            run_recovery_point(directory, ops, checkpoint=False)
            for ops in ops_series
        ]
        points.append(
            run_recovery_point(directory, ops_series[-1], checkpoint=True)
        )
        return points

    if wal_dir is not None:
        return run_all(wal_dir)
    with tempfile.TemporaryDirectory(prefix="repro-recovery-") as directory:
        return run_all(directory)


@dataclass
class NetPoint:
    """Round-trip cost of one transport: in-process calls vs loopback TCP.

    One client thread issues ``ops`` synchronous ``submit_wait`` calls
    (document appends through the WAL), so the series isolates the
    protocol boundary's per-operation overhead — framing, the extra
    copies, and the connection thread handoff — against an identical
    service configuration.
    """

    transport: str  # "inproc" | "tcp"
    ops: int
    seconds: float
    ops_per_second: float
    mean_ms: float
    p50_ms: float
    p99_ms: float

    def as_measurement(self) -> Measurement:
        return Measurement(
            method=self.transport,
            x=self.ops,
            seconds=self.seconds,
            client_statements=0,
            trigger_statements=0,
            runs=1,
        )


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def run_net_point(
    transport: str, ops: int = DEFAULT_NET_OPS, wal_dir: str | None = None
) -> NetPoint:
    """Time ``ops`` synchronous durable appends over one transport."""
    from repro.service.net import NetServer, ServiceClient

    wal_path = None
    if wal_dir is not None:
        wal_path = os.path.join(wal_dir, f"net-{transport}.wal")
    service = UpdateService(ServiceConfig(wal_path=wal_path, batch_size=8))
    service.host_document("bench.xml", XmlParser("<log></log>").parse())
    service.start()
    server = client = None
    try:
        if transport == "tcp":
            server = NetServer(service).start()
            host, port = server.address
            client = ServiceClient(host, port)
            submit_wait = client.submit_wait
        elif transport == "inproc":
            submit_wait = service.submit_wait
        else:
            raise ValueError(f"unknown transport {transport!r}")
        latencies: list[float] = []
        start = time.perf_counter()
        for index in range(ops):
            op = DeltaUpdate(
                "bench.xml", (InsertNode((), 1 << 30, xml=f'<e i="{index}"/>'),)
            )
            began = time.perf_counter()
            submit_wait(op, 120)
            latencies.append((time.perf_counter() - began) * 1000.0)
        elapsed = time.perf_counter() - start
    finally:
        if client is not None:
            client.close()
        if server is not None:
            server.close()
        service.close()
    latencies.sort()
    return NetPoint(
        transport=transport,
        ops=ops,
        seconds=elapsed,
        ops_per_second=ops / elapsed if elapsed else float("inf"),
        mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
        p50_ms=_quantile(latencies, 0.50),
        p99_ms=_quantile(latencies, 0.99),
    )


def run_net_benchmark(
    ops: int = DEFAULT_NET_OPS, wal_dir: str | None = None
) -> list[NetPoint]:
    """The loopback-vs-in-process pair (``net`` series)."""

    def run_all(directory: str) -> list[NetPoint]:
        return [
            run_net_point(transport, ops=ops, wal_dir=directory)
            for transport in ("inproc", "tcp")
        ]

    if wal_dir is not None:
        return run_all(wal_dir)
    with tempfile.TemporaryDirectory(prefix="repro-net-") as directory:
        return run_all(directory)


@dataclass
class PipelinePoint:
    """Throughput of one pipeline depth on the asyncio front end.

    One connection keeps ``depth`` durable ``submit_wait`` appends in
    flight (an :class:`asyncio.Semaphore` refills the window as
    responses land).  Depth 1 reproduces the blocking client's
    request/response lockstep; deeper pipelines expose concurrent
    requests to the group-commit batcher, which amortises the WAL fsync
    across them — the throughput win the series records.
    """

    depth: int
    ops: int
    seconds: float
    ops_per_second: float
    mean_ms: float
    p50_ms: float
    p99_ms: float

    def as_measurement(self) -> Measurement:
        return Measurement(
            method="pipeline",
            x=self.depth,
            seconds=self.seconds,
            client_statements=0,
            trigger_statements=0,
            runs=1,
        )


@dataclass
class ConnectionPoint:
    """Latency with ``connections`` concurrent idle connections attached.

    The fleet is opened (bounded concurrency), then one member measures
    ``pings`` round trips while the rest sit idle — the curve shows what
    an idle connection costs the event loop.  The thread-per-connection
    server pays a thread per member; the asyncio server pays a task.
    """

    connections: int
    pings: int
    connect_seconds: float
    seconds: float
    ping_mean_ms: float
    ping_p50_ms: float
    ping_p99_ms: float

    def as_measurement(self) -> Measurement:
        return Measurement(
            method="connections",
            x=self.connections,
            seconds=self.seconds,
            client_statements=0,
            trigger_statements=0,
            runs=1,
        )


def run_pipeline_point(
    depth: int, ops: int = DEFAULT_PIPELINE_OPS, wal_dir: str | None = None
) -> PipelinePoint:
    """``ops`` durable appends through one async connection holding
    ``depth`` requests in flight."""
    import asyncio

    from repro.service.net import AsyncNetServer, AsyncServiceClient

    wal_path = None
    if wal_dir is not None:
        wal_path = os.path.join(wal_dir, f"pipeline-{depth}.wal")
    service = UpdateService(ServiceConfig(wal_path=wal_path, batch_size=32))
    service.host_document("bench.xml", XmlParser("<log></log>").parse())
    service.start()
    server = AsyncNetServer(service, max_inflight=max(64, depth)).start()
    host, port = server.address
    latencies: list[float] = []

    async def run() -> float:
        client = await AsyncServiceClient.connect(host, port)
        window = asyncio.Semaphore(depth)

        async def one(index: int) -> None:
            op = DeltaUpdate(
                "bench.xml", (InsertNode((), 1 << 30, xml=f'<e i="{index}"/>'),)
            )
            async with window:
                began = time.perf_counter()
                await client.submit_wait(op, 120)
                latencies.append((time.perf_counter() - began) * 1000.0)

        try:
            start = time.perf_counter()
            await asyncio.gather(*(one(index) for index in range(ops)))
            return time.perf_counter() - start
        finally:
            await client.close()

    try:
        elapsed = asyncio.run(run())
    finally:
        server.close()
        service.close()
    latencies.sort()
    return PipelinePoint(
        depth=depth,
        ops=ops,
        seconds=elapsed,
        ops_per_second=ops / elapsed if elapsed else float("inf"),
        mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
        p50_ms=_quantile(latencies, 0.50),
        p99_ms=_quantile(latencies, 0.99),
    )


def run_connection_point(
    connections: int, pings: int = DEFAULT_CONNECTION_PINGS
) -> ConnectionPoint:
    """Ping latency with a fleet of ``connections`` idle connections
    held open on the asyncio server."""
    import asyncio

    from repro.service.net import AsyncNetServer, AsyncServiceClient

    service = UpdateService(ServiceConfig(batch_size=8))
    service.host_document("bench.xml", XmlParser("<log></log>").parse())
    service.start()
    server = AsyncNetServer(
        service, max_connections=max(connections + 16, 10_000)
    ).start()
    host, port = server.address
    latencies: list[float] = []

    async def run() -> tuple[float, float]:
        opener = asyncio.Semaphore(64)

        async def open_one() -> AsyncServiceClient:
            async with opener:
                return await AsyncServiceClient.connect(
                    host, port, connect_timeout=60
                )

        began_connect = time.perf_counter()
        fleet = await asyncio.gather(*(open_one() for _ in range(connections)))
        connect_seconds = time.perf_counter() - began_connect
        try:
            prober = fleet[0]
            await prober.ping()  # warm
            start = time.perf_counter()
            for _ in range(pings):
                began = time.perf_counter()
                await prober.ping()
                latencies.append((time.perf_counter() - began) * 1000.0)
            elapsed = time.perf_counter() - start
        finally:
            closer = asyncio.Semaphore(64)

            async def close_one(client: AsyncServiceClient) -> None:
                async with closer:
                    await client.close()

            await asyncio.gather(*(close_one(client) for client in fleet))
        return connect_seconds, elapsed

    try:
        connect_seconds, elapsed = asyncio.run(run())
    finally:
        server.close()
        service.close()
    latencies.sort()
    return ConnectionPoint(
        connections=connections,
        pings=pings,
        connect_seconds=connect_seconds,
        seconds=elapsed,
        ping_mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
        ping_p50_ms=_quantile(latencies, 0.50),
        ping_p99_ms=_quantile(latencies, 0.99),
    )


def run_async_net_benchmark(
    depths: tuple[int, ...] = DEFAULT_PIPELINE_DEPTHS,
    pipeline_ops: int = DEFAULT_PIPELINE_OPS,
    connection_counts: tuple[int, ...] = DEFAULT_CONNECTION_COUNTS,
    pings: int = DEFAULT_CONNECTION_PINGS,
    wal_dir: str | None = None,
) -> tuple[list[PipelinePoint], list[ConnectionPoint]]:
    """The asyncio additions to the ``net`` series: pipeline-depth
    throughput and connection-count-vs-latency curves."""

    def run_all(directory: str | None) -> tuple[list, list]:
        pipeline = [
            run_pipeline_point(depth, ops=pipeline_ops, wal_dir=directory)
            for depth in depths
        ]
        connection = [
            run_connection_point(count, pings=pings)
            for count in connection_counts
        ]
        return pipeline, connection

    if wal_dir is not None:
        return run_all(wal_dir)
    with tempfile.TemporaryDirectory(prefix="repro-aionet-") as directory:
        return run_all(directory)


@dataclass
class CheckpointPoint:
    """Submit latency of one phase: with or without concurrent checkpoints.

    The fuzzy protocol's claim is that a checkpoint is not a stall: a
    client committing to one document while a background thread
    checkpoints continuously should see submit latency comparable to an
    idle service (the old protocol paused the batcher and took every
    write lock for the duration).  ``docs_snapshotted`` /
    ``docs_carried`` record the incremental property alongside: after
    the first full pass only the hot document is re-captured; the idle
    ones carry their state files forward.
    """

    mode: str  # "baseline" | "during_checkpoints"
    ops: int
    seconds: float
    ops_per_second: float
    mean_ms: float
    p50_ms: float
    p99_ms: float
    checkpoints: int = 0
    docs_snapshotted: int = 0
    docs_carried: int = 0

    def as_measurement(self) -> Measurement:
        return Measurement(
            method=self.mode,
            x=self.ops,
            seconds=self.seconds,
            client_statements=0,
            trigger_statements=0,
            runs=1,
        )


def run_checkpoint_point(
    mode: str,
    ops: int = DEFAULT_CHECKPOINT_OPS,
    wal_dir: str | None = None,
    docs: int = DEFAULT_CHECKPOINT_DOCS,
) -> CheckpointPoint:
    """Time ``ops`` synchronous attribute writes to one hot document
    while a background thread checkpoints continuously (``mode`` =
    ``"during_checkpoints"``) or not at all (``"baseline"``).

    The writes overwrite one attribute instead of appending, so the
    document — and with it each checkpoint's capture cost — stays a
    constant size across the run: the series then isolates the
    protocol's interference with the commit path rather than the cost
    of serializing an ever-growing document."""
    wal_path = os.path.join(wal_dir, f"checkpoint-{mode}.wal")
    service = UpdateService(ServiceConfig(wal_path=wal_path, batch_size=8))
    names = [f"bench-{index}.xml" for index in range(docs)]
    for name in names:
        service.host_document(name, XmlParser("<log></log>").parse())
    service.start()
    hot = names[0]
    reports: list = []
    stop = threading.Event()

    def checkpointer():
        # A short gap between checkpoints, as the automatic policy's
        # duty cycle would leave: checkpoints still overlap most of the
        # measured window, but a zero-gap busy loop would measure raw
        # fsync starvation of the shared disk, not the protocol.
        while not stop.is_set():
            reports.append(service.checkpoint(timeout=120))
            stop.wait(0.01)

    worker = None
    try:
        # Seed every document and take one full pass, so the measured
        # checkpoints run incrementally (hot doc fresh, idle carried).
        for name in names:
            service.submit_wait(
                DeltaUpdate(name, (InsertNode((), 1 << 30, xml="<seed/>"),)),
                timeout=120,
            )
        service.checkpoint(timeout=120)
        if mode == "during_checkpoints":
            worker = threading.Thread(target=checkpointer, daemon=True)
            worker.start()
        elif mode != "baseline":
            raise ValueError(f"unknown mode {mode!r}")
        latencies: list[float] = []
        start = time.perf_counter()
        for index in range(ops):
            op = DeltaUpdate(hot, (SetAttribute((0,), "i", str(index)),))
            began = time.perf_counter()
            service.submit_wait(op, timeout=120)
            latencies.append((time.perf_counter() - began) * 1000.0)
        elapsed = time.perf_counter() - start
        stop.set()
        if worker is not None:
            worker.join(120)
    finally:
        stop.set()
        service.close()
    latencies.sort()
    return CheckpointPoint(
        mode=mode,
        ops=ops,
        seconds=elapsed,
        ops_per_second=ops / elapsed if elapsed else float("inf"),
        mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
        p50_ms=_quantile(latencies, 0.50),
        p99_ms=_quantile(latencies, 0.99),
        checkpoints=len(reports),
        docs_snapshotted=sum(report.snapshotted for report in reports),
        docs_carried=sum(report.carried for report in reports),
    )


def run_checkpoint_benchmark(
    ops: int = DEFAULT_CHECKPOINT_OPS, wal_dir: str | None = None
) -> list[CheckpointPoint]:
    """The checkpoint-interference pair (``checkpoint`` series)."""

    def run_all(directory: str) -> list[CheckpointPoint]:
        return [
            run_checkpoint_point("baseline", ops=ops, wal_dir=directory),
            run_checkpoint_point("during_checkpoints", ops=ops, wal_dir=directory),
        ]

    if wal_dir is not None:
        return run_all(wal_dir)
    with tempfile.TemporaryDirectory(prefix="repro-checkpoint-") as directory:
        return run_all(directory)


@dataclass
class ReadPoint:
    """Read throughput of one (transport, client-thread-count) pair.

    The workload is mixed: each client loops «``reads_per_cycle``
    cached-statement queries, then one synchronous durable write».  The
    total cycle count is fixed, so every point does identical work and
    the series isolates what concurrency buys.  Reads execute on the
    query thread pool over the per-store snapshot reader pool; writes
    group-commit through the WAL.  Scaling comes from two overlaps the
    read-path work enables: concurrent readers no longer serialise
    behind the store's single connection lock, and reads proceed while
    other clients sit in the group-commit window / fsync (on multi-core
    hosts the pooled readers additionally scan in true parallel).

    ``parse_hit_rate`` / ``plan_hit_rate`` are measured over the timed
    window (caches warmed by one pass first — steady-state rates);
    ``pool_reads`` proves the pooled path actually served the queries.
    """

    transport: str  # "inproc" | "tcp"
    threads: int
    reads: int
    writes: int
    seconds: float
    read_ops_per_second: float
    mean_ms: float
    p50_ms: float
    p99_ms: float
    parse_hit_rate: float
    plan_hit_rate: float
    pool_reads: int

    def as_measurement(self) -> Measurement:
        return Measurement(
            method=f"read-{self.transport}",
            x=self.threads,
            seconds=self.seconds,
            client_statements=0,
            trigger_statements=0,
            runs=1,
        )


def read_statements(count: int = DEFAULT_READ_STATEMENTS) -> list[str]:
    """The repeated statement vocabulary: full scans of ``n1`` for a
    string value that never occurs, so SQLite does the row-stepping work
    while reconstruction stays constant across the run."""
    return [
        f'FOR $x IN document("synthetic.xml")/root/n1[str="absent-{index}"] '
        "RETURN $x"
        for index in range(count)
    ]


def _hit_rate(before: dict, after: dict, prefix: str) -> float:
    hits = counter_delta(before, after, f"cache.{prefix}.hits")
    misses = counter_delta(before, after, f"cache.{prefix}.misses")
    total = hits + misses
    return hits / total if total else 1.0


def run_read_point(
    master: XmlStore,
    transport: str,
    threads: int,
    cycles: int = DEFAULT_READ_CYCLES,
    reads_per_cycle: int = DEFAULT_READS_PER_CYCLE,
    wal_dir: str | None = None,
) -> ReadPoint:
    """Run the mixed read/write workload with ``threads`` clients."""
    import threading

    from repro.service.net import NetServer, ServiceClient

    registry = get_registry()
    statements = read_statements()
    with master.snapshot() as store:
        wal_path = None
        if wal_dir is not None:
            wal_path = os.path.join(wal_dir, f"read-{transport}-{threads}.wal")
        # One fixed configuration for every point: the group-commit
        # window and coalesce wait are what multiple clients amortise.
        service = UpdateService(
            ServiceConfig(
                wal_path=wal_path,
                batch_size=8,
                coalesce_wait=0.006,
                query_workers=8,
                readers=8,
            )
        )
        service.host_store("synthetic.xml", store)
        service.start()
        server = None
        clients: list[ServiceClient] = []
        try:
            if transport == "tcp":
                server = NetServer(service).start()
                host, port = server.address
                clients = [ServiceClient(host, port) for _ in range(threads)]

                def reader(index: int, statement: str) -> None:
                    clients[index].query("synthetic.xml", statement, timeout=60)

                def writer(index: int, op) -> None:
                    clients[index].submit_wait(op, 60)

            elif transport == "inproc":

                def reader(index: int, statement: str) -> None:
                    service.query_elements("synthetic.xml", statement)

                def writer(index: int, op) -> None:
                    service.submit_wait(op, timeout=60)

            else:
                raise ValueError(f"unknown transport {transport!r}")

            ids = [
                row[0] for row in store.db.query('SELECT id FROM "n1" ORDER BY id')
            ]
            if len(ids) < cycles:
                raise ValueError(
                    f"workload has {len(ids)} n1 subtrees; {cycles} needed"
                )
            # Split the fixed cycle budget across the clients (first
            # clients absorb any remainder).
            base, extra = divmod(cycles, threads)
            shares = [base + (1 if index < extra else 0) for index in range(threads)]
            offsets = [sum(shares[:index]) for index in range(threads)]

            # Warm the caches and every pooled reader outside the timed
            # window so the point measures steady-state serving.
            for statement in statements:
                service.query_elements("synthetic.xml", statement)

            latencies_per_thread: list[list[float]] = [[] for _ in range(threads)]
            failures: list[BaseException] = []

            def client_loop(index: int) -> None:
                my_latencies = latencies_per_thread[index]
                my_ids = ids[offsets[index] : offsets[index] + shares[index]]
                try:
                    for cycle, subtree_id in enumerate(my_ids):
                        for read in range(reads_per_cycle):
                            statement = statements[
                                (cycle * reads_per_cycle + read) % len(statements)
                            ]
                            began = time.perf_counter()
                            reader(index, statement)
                            my_latencies.append(
                                (time.perf_counter() - began) * 1000.0
                            )
                        writer(
                            index, SubtreeDelete("synthetic.xml", "n1", (subtree_id,))
                        )
                except BaseException as error:  # surfaced after join
                    failures.append(error)

            workers = [
                threading.Thread(target=client_loop, args=(index,), daemon=True)
                for index in range(threads)
            ]
            before = registry.snapshot()
            start = time.perf_counter()
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            elapsed = time.perf_counter() - start
            after = registry.snapshot()
            if failures:
                raise failures[0]
        finally:
            for client in clients:
                client.close()
            if server is not None:
                server.close()
            service.close()
    latencies = sorted(
        latency for bucket in latencies_per_thread for latency in bucket
    )
    reads = len(latencies)
    return ReadPoint(
        transport=transport,
        threads=threads,
        reads=reads,
        writes=cycles,
        seconds=elapsed,
        read_ops_per_second=reads / elapsed if elapsed else float("inf"),
        mean_ms=sum(latencies) / reads if reads else 0.0,
        p50_ms=_quantile(latencies, 0.50),
        p99_ms=_quantile(latencies, 0.99),
        parse_hit_rate=_hit_rate(before, after, "parse"),
        plan_hit_rate=_hit_rate(before, after, "plan"),
        pool_reads=counter_delta(before, after, "sql.pool.reads"),
    )


def run_read_benchmark(
    master: XmlStore,
    threads_series: tuple[int, ...] = DEFAULT_READ_THREADS,
    transports: tuple[str, ...] = ("inproc", "tcp"),
    cycles: int = DEFAULT_READ_CYCLES,
    reads_per_cycle: int = DEFAULT_READS_PER_CYCLE,
    wal_dir: str | None = None,
) -> list[ReadPoint]:
    """The ``read`` series: thread scaling per transport."""

    def run_all(directory: str) -> list[ReadPoint]:
        return [
            run_read_point(
                master,
                transport,
                threads,
                cycles=cycles,
                reads_per_cycle=reads_per_cycle,
                wal_dir=directory,
            )
            for transport in transports
            for threads in threads_series
        ]

    if wal_dir is not None:
        return run_all(wal_dir)
    with tempfile.TemporaryDirectory(prefix="repro-read-") as directory:
        return run_all(directory)


@dataclass
class ShardPoint:
    """Aggregate durable-append throughput at one shard count.

    One async client drives a fixed stream of ``submit_wait`` appends
    (round-robin over ``docs`` documents) through the router, keeping
    ``depth`` requests in flight per shard.  Workers are real processes,
    so on a multi-core host the WAL fsyncs and SQL application run in
    true parallel; ``cpus`` records how many cores the measurement
    actually had — on a single-core box the series measures router
    overhead, not scaling, and says so in the data.
    """

    shards: int
    docs: int
    ops: int
    depth: int
    cpus: int
    seconds: float
    ops_per_second: float
    mean_ms: float
    p50_ms: float
    p99_ms: float

    def as_measurement(self) -> Measurement:
        return Measurement(
            method="shards",
            x=self.shards,
            seconds=self.seconds,
            client_statements=0,
            trigger_statements=0,
            runs=1,
        )


def run_shard_point(
    shards: int,
    ops: int = DEFAULT_SHARD_OPS,
    docs: int = DEFAULT_SHARD_DOCS,
    depth: int = DEFAULT_SHARD_DEPTH,
    base_dir: str | None = None,
) -> ShardPoint:
    """``ops`` durable appends through a ``shards``-worker cluster."""
    import asyncio

    from repro.service.router import ShardCluster

    def run_in(directory: str) -> ShardPoint:
        names = [f"bench-{index}.xml" for index in range(docs)]
        documents = {name: "<log></log>" for name in names}
        cluster = ShardCluster(
            os.path.join(directory, f"cluster-{shards}"),
            documents,
            shards,
            batch_size=32,
        ).start()
        host, port = cluster.address
        latencies: list[float] = []

        async def run() -> float:
            from repro.service.net import AsyncServiceClient

            client = await AsyncServiceClient.connect(host, port)
            window = asyncio.Semaphore(depth * shards)

            async def one(index: int) -> None:
                op = DeltaUpdate(
                    names[index % docs],
                    (InsertNode((), 1 << 30, xml=f'<e i="{index}"/>'),),
                )
                async with window:
                    began = time.perf_counter()
                    await client.submit_wait(op, 120)
                    latencies.append((time.perf_counter() - began) * 1000.0)

            try:
                start = time.perf_counter()
                await asyncio.gather(*(one(index) for index in range(ops)))
                return time.perf_counter() - start
            finally:
                await client.close()

        try:
            elapsed = asyncio.run(run())
        finally:
            cluster.close()
        latencies.sort()
        return ShardPoint(
            shards=shards,
            docs=docs,
            ops=ops,
            depth=depth,
            cpus=os.cpu_count() or 1,
            seconds=elapsed,
            ops_per_second=ops / elapsed if elapsed else float("inf"),
            mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
            p50_ms=_quantile(latencies, 0.50),
            p99_ms=_quantile(latencies, 0.99),
        )

    if base_dir is not None:
        return run_in(base_dir)
    with tempfile.TemporaryDirectory(prefix="repro-shards-") as directory:
        return run_in(directory)


def run_shards_benchmark(
    shard_counts: tuple[int, ...] = DEFAULT_SHARD_COUNTS,
    ops: int = DEFAULT_SHARD_OPS,
    docs: int = DEFAULT_SHARD_DOCS,
    depth: int = DEFAULT_SHARD_DEPTH,
    base_dir: str | None = None,
) -> list[ShardPoint]:
    """The ``shards`` series: aggregate write throughput vs shard count."""

    def run_all(directory: str) -> list[ShardPoint]:
        return [
            run_shard_point(
                shards, ops=ops, docs=docs, depth=depth, base_dir=directory
            )
            for shards in shard_counts
        ]

    if base_dir is not None:
        return run_all(base_dir)
    with tempfile.TemporaryDirectory(prefix="repro-shards-") as directory:
        return run_all(directory)


def save_shards_results(path: str, points: list[ShardPoint]) -> None:
    """Merge the ``shards`` series into ``BENCH_service.json`` without
    disturbing the other experiments' entries."""
    payload: dict = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except ValueError:
                payload = {}
        if not isinstance(payload, dict):
            payload = {}
    payload["shards"] = {
        "experiment": "shard-per-core router: write scaling vs shard count",
        "workload": (
            "durable document appends round-robin over the hosted "
            "documents, pipelined through the router"
        ),
        "cpus": os.cpu_count() or 1,
        "points": [asdict(point) for point in points],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def save_service_results(
    path: str,
    points: list[ServicePoint],
    recovery: list[RecoveryPoint] | None = None,
    net: list[NetPoint] | None = None,
    read: list[ReadPoint] | None = None,
    checkpoint: list[CheckpointPoint] | None = None,
    pipeline: list[PipelinePoint] | None = None,
    connections: list[ConnectionPoint] | None = None,
) -> None:
    """Write ``BENCH_service.json``: one entry per batch size, plus the
    recovery-time-vs-log-length, network-transport, and read-scaling
    series when measured."""
    payload = {
        "experiment": "group-commit service throughput",
        "workload": "single-subtree deletes, per_statement_trigger",
        "points": [asdict(point) for point in points],
    }
    # The mapping ablation and the shard-scaling series write into the
    # same file under their own keys; keep them when regenerating the
    # service series.
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            try:
                existing = json.load(handle)
            except ValueError:
                existing = {}
        for key in ("mapping", "shards"):
            if key in existing:
                payload[key] = existing[key]
    if recovery is not None:
        payload["recovery"] = {
            "experiment": "cold recovery time vs WAL length",
            "workload": "document appends; checkpointed variant retires the log",
            "points": [asdict(point) for point in recovery],
        }
    if net is not None or pipeline is not None or connections is not None:
        net_entry = payload.setdefault(
            "net",
            {
                "experiment": "transport overhead: loopback TCP vs in-process",
                "workload": "synchronous durable document appends, one client",
            },
        )
        if net is not None:
            net_entry["points"] = [asdict(point) for point in net]
        if pipeline is not None:
            net_entry["pipeline"] = {
                "experiment": "async pipeline depth vs durable-append throughput",
                "workload": (
                    "one async connection holding N submit_wait appends in "
                    "flight; group commit amortises the fsync across the "
                    "window"
                ),
                "points": [asdict(point) for point in pipeline],
            }
        if connections is not None:
            net_entry["connections"] = {
                "experiment": "connection count vs round-trip latency (asyncio)",
                "workload": (
                    "a fleet of idle connections held open while one member "
                    "measures ping round trips"
                ),
                "points": [asdict(point) for point in connections],
            }
    if read is not None:
        payload["read"] = {
            "experiment": "read-path thread scaling: caches + reader pool",
            "workload": (
                "mixed: repeated cached statements + durable subtree deletes, "
                "fixed total work split across client threads"
            ),
            "points": [asdict(point) for point in read],
        }
    if checkpoint is not None:
        payload["checkpoint"] = {
            "experiment": "submit latency during fuzzy checkpoints",
            "workload": (
                "synchronous appends to one hot document; the contended "
                "phase checkpoints continuously (incremental) in the "
                "background"
            ),
            "points": [asdict(point) for point in checkpoint],
        }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
