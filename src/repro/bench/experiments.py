"""Experiment definitions: workload drivers behind every table/figure.

Workloads (Section 7.1): *bulk* applies the operation to **every**
subtree element at the root level (one SQL statement for deletes);
*random* applies it to **10 randomly chosen** subtrees (one statement
each).  Deletes remove ``n1`` subtrees; inserts replicate subtrees of
the root (Section 7.4).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.bench.harness import ExperimentRunner, Measurement
from repro.relational.store import XmlStore
from repro.workloads.dblp import DblpParams, dblp_dtd, load_dblp_directly
from repro.workloads.randomized import load_randomized_directly
from repro.workloads.synthetic import SyntheticParams, load_fixed_directly, synthetic_dtd

DELETE_STRATEGIES = ("asr", "per_statement_trigger", "per_tuple_trigger", "interval")
ALL_DELETE_STRATEGIES = DELETE_STRATEGIES + ("cascade",)
INSERT_STRATEGIES = ("tuple", "table", "asr", "interval")

RANDOM_SUBTREES = 10  # the paper's random workload size


# ----------------------------------------------------------------------
# Store builders
# ----------------------------------------------------------------------
def build_fixed_store(params: SyntheticParams) -> XmlStore:
    """A store loaded with a fixed synthetic document."""
    store = XmlStore.from_dtd(synthetic_dtd(params.depth), document_name="synthetic.xml")
    load_fixed_directly(store.db, store.schema, params, allocator=store.allocator)
    return store


def build_randomized_store(params: SyntheticParams) -> XmlStore:
    """A store loaded with a randomized synthetic document."""
    store = XmlStore.from_dtd(synthetic_dtd(params.depth), document_name="synthetic.xml")
    load_randomized_directly(store.db, store.schema, params, allocator=store.allocator)
    return store


def build_dblp_store(params: DblpParams = DblpParams()) -> XmlStore:
    """A store loaded with DBLP-shaped data."""
    store = XmlStore.from_dtd(dblp_dtd(), document_name="dblp.xml")
    load_dblp_directly(store.db, store.schema, params, allocator=store.allocator)
    return store


def random_subtree_ids(
    store: XmlStore, relation: str, count: int = RANDOM_SUBTREES, seed: int = 42
) -> list[int]:
    """Pick the ids of ``count`` random subtree roots (fixed seed so all
    methods delete the same subtrees)."""
    ids = [row[0] for row in store.db.query(f'SELECT id FROM "{relation}"')]
    rng = random.Random(seed)
    if len(ids) <= count:
        return ids
    return rng.sample(ids, count)


# ----------------------------------------------------------------------
# Delete experiments (Figures 6-9, Table 2 top row)
# ----------------------------------------------------------------------
def bulk_delete(store: XmlStore, relation: str = "n1") -> None:
    """Bulk workload: delete every subtree (single statement)."""
    store.delete_subtrees(relation)


def random_delete(store: XmlStore, ids: Sequence[int], relation: str = "n1") -> None:
    """Random workload: one delete statement per chosen subtree."""
    for subtree_id in ids:
        store.delete_subtrees(relation, f'"{relation}".id = ?', (subtree_id,))


def delete_series(
    master: XmlStore,
    x: float,
    workload: str,
    methods: Sequence[str] = DELETE_STRATEGIES,
    relation: str = "n1",
    runner: Optional[ExperimentRunner] = None,
) -> list[Measurement]:
    """Measure every delete method at one x value on one loaded store."""
    runner = runner or ExperimentRunner(master)
    ids = random_subtree_ids(master, relation) if workload == "random" else []
    results: list[Measurement] = []
    for method in methods:
        master.set_delete_method(method)
        runner.master = master
        if workload == "bulk":
            operation = lambda store: bulk_delete(store, relation)  # noqa: E731
        else:
            operation = lambda store: random_delete(store, ids, relation)  # noqa: E731
        results.append(runner.measure(method, x, operation))
    return results


# ----------------------------------------------------------------------
# Insert experiments (Figures 10-11, Table 2 bottom row)
# ----------------------------------------------------------------------
def bulk_insert(store: XmlStore, root_id: int, relation: str = "n1") -> None:
    """Bulk workload: replicate every subtree of the root (one strategy
    invocation covering all subtrees — Section 7.4)."""
    store.copy_subtrees(relation, f'"{relation}".parentId = ?', (root_id,), root_id)


def random_insert(
    store: XmlStore, root_id: int, ids: Sequence[int], relation: str = "n1"
) -> None:
    """Random workload: replicate 10 randomly chosen subtrees."""
    for subtree_id in ids:
        store.copy_subtrees(relation, f'"{relation}".id = ?', (subtree_id,), root_id)


def insert_series(
    master: XmlStore,
    x: float,
    workload: str,
    methods: Sequence[str] = INSERT_STRATEGIES,
    relation: str = "n1",
    runner: Optional[ExperimentRunner] = None,
) -> list[Measurement]:
    """Measure every insert method at one x value on one loaded store."""
    runner = runner or ExperimentRunner(master)
    root_relation = master.schema.root
    root_id = master.db.query_one(f'SELECT id FROM "{root_relation}"')[0]
    ids = random_subtree_ids(master, relation) if workload == "random" else []
    results: list[Measurement] = []
    for method in methods:
        master.set_insert_method(method)
        runner.master = master
        if workload == "bulk":
            operation = lambda store: bulk_insert(store, root_id, relation)  # noqa: E731
        else:
            operation = lambda store: random_insert(store, root_id, ids, relation)  # noqa: E731
        results.append(runner.measure(method, x, operation))
    return results


# ----------------------------------------------------------------------
# Path expression evaluation with/without ASRs (Section 7.2)
# ----------------------------------------------------------------------
def path_expression_comparison(
    master: XmlStore, path_length: int, runs: int = 5
) -> dict[str, Measurement]:
    """Compare conventional multi-way joins against the ASR method for a
    path expression of the given length (``n1/.../n<path_length>`` with a
    selection at the bottom).

    Returns ``{"joins": ..., "asr": ...}`` measurements of the query that
    retrieves the n1 (subtree root) ids of matching paths.
    """
    from repro.relational.asr import AsrManager

    runner = ExperimentRunner(master, runs=runs)
    bottom = f"n{path_length}"
    # A selective predicate on the bottom relation: ids divisible by 7.
    predicate = "CAST(t.num AS INTEGER) % 7 = 0"

    join_parts = ['"n1" t1']
    for level in range(2, path_length + 1):
        join_parts.append(
            f'JOIN "n{level}" t{level} ON t{level}.parentId = t{level - 1}.id'
        )
    join_sql = (
        f"SELECT DISTINCT t1.id FROM {' '.join(join_parts)} "
        f"WHERE {predicate.replace('t.', f't{path_length}.')}"
    )

    asr = AsrManager(master.db, master.schema)
    asr.create_all()
    try:
        asr_sql = asr.path_query_sql("n1", bottom, predicate)

        def run_joins(store: XmlStore) -> None:
            store.db.query(join_sql)

        def run_asr(store: XmlStore) -> None:
            store.db.query(asr_sql)

        joins = runner.measure("joins", path_length, run_joins)
        through_asr = runner.measure("asr", path_length, run_asr)
    finally:
        asr.drop_all()
    return {"joins": joins, "asr": through_asr}
