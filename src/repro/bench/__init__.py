"""Benchmark harness reproducing the paper's evaluation (Section 7).

:mod:`~repro.bench.harness` implements the measurement protocol (five
runs, first discarded, averaged — §7); :mod:`~repro.bench.experiments`
defines one experiment per table/figure and the workload drivers
(bulk = every subtree, random = 10 random subtrees — §7.1);
:mod:`~repro.bench.reporting` prints paper-style series and persists
results for EXPERIMENTS.md.
"""

from repro.bench.harness import ExperimentRunner, Measurement
from repro.bench.experiments import (
    DELETE_STRATEGIES,
    INSERT_STRATEGIES,
    build_dblp_store,
    build_fixed_store,
    build_randomized_store,
    delete_series,
    insert_series,
    path_expression_comparison,
    random_subtree_ids,
)
from repro.bench.reporting import format_series, save_results

__all__ = [
    "DELETE_STRATEGIES",
    "ExperimentRunner",
    "INSERT_STRATEGIES",
    "Measurement",
    "build_dblp_store",
    "build_fixed_store",
    "build_randomized_store",
    "delete_series",
    "format_series",
    "insert_series",
    "path_expression_comparison",
    "random_subtree_ids",
    "save_results",
]
