"""Translate FLWU update statements to SQL over the mapping (Section 6).

The translator mirrors the paper's execution recipe (Section 6.3):

1. every FOR clause becomes a :class:`TargetSelection`-based binding
   (WHERE predicates attach to the variable they constrain);
2. unless the statement is a single primitive operation, all bindings —
   including nested Sub-Update pattern matches — are **materialised**
   into explicit tuple-id lists over the pre-update state.  This is how
   the paper prevents interference between sub-operations (Example 8's
   ordering pitfall).  A single-operation statement skips this and
   pushes its predicate straight into the SQL, which is the shape the
   benchmarks measure;
3. operations execute sequentially: "simple" updates (inlined content)
   become SQL UPDATEs, "complex" deletes/inserts go through the
   configured strategy objects.

Relational stores do not keep document order among child *elements*
(Section 5.1), so positional element inserts degrade to appends with a
recorded warning (IDREFS lists ARE ordered — they live in one column —
so positional reference inserts are honoured).  Deleting one entry from
an IDREFS column uses string surgery and removes every occurrence of
that ID (IDs rarely repeat within one list).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from typing import Optional, Union

from repro.errors import TranslationError
from repro.relational.database import Database
from repro.relational.delete_methods import DeleteMethod
from repro.relational.idgen import IdAllocator
from repro.relational.insert_methods import InsertMethod
from repro.relational.query_translate import (
    TargetSelection,
    translate_predicate,
    translate_relative_path,
    translate_target_path,
)
from repro.relational.schema import (
    FIELD_ATTRIBUTE,
    FIELD_PCDATA,
    FIELD_PRESENCE,
    FIELD_REFS,
    InlinedField,
    MappingSchema,
    Relation,
)
from repro.relational.shredder import extract_field, shred_element
from repro.updates.binding import LetClause
from repro.updates.content import RefContent
from repro.updates.operations import (
    Delete,
    Insert,
    InsertAfter,
    InsertBefore,
    Rename,
    Replace,
    SubUpdate,
    UpdateOp,
    VarOperand,
)
from repro.xmlmodel.model import Attribute, Element
from repro.xpath.ast import (
    AttributeStep,
    ChildStep,
    DocumentStart,
    Expr,
    Path,
    PathValue,
    RefStep,
    TextStep,
    VariableStart,
)
from repro.xquery.ast import Query


# ----------------------------------------------------------------------
# Bindings
# ----------------------------------------------------------------------
@dataclass
class TupleBinding:
    """A variable bound to whole tuples (a relation-anchored element)."""

    selection: TargetSelection


@dataclass
class InlinedBinding:
    """A variable bound to something stored *inside* tuples.

    ``kind``: 'element' (inlined element), 'attribute', 'refs' (whole
    IDREFS list), 'ref_entry' (one IDREF), or 'pcdata'.
    """

    base: TargetSelection
    kind: str
    path: tuple[str, ...] = ()
    name: str = ""
    ref_target: str = ""  # for ref_entry; '*' matches any


Binding = Union[TupleBinding, InlinedBinding]


class UpdateTranslator:
    """Executes parsed FLWU statements against the relational store."""

    def __init__(
        self,
        db: Database,
        schema: MappingSchema,
        allocator: IdAllocator,
        delete_method: DeleteMethod,
        insert_method: InsertMethod,
        strict_order: bool = False,
        document_name: Optional[str] = None,
    ) -> None:
        self.db = db
        self.schema = schema
        self.allocator = allocator
        self.delete_method = delete_method
        self.insert_method = insert_method
        self.strict_order = strict_order
        self.document_name = document_name
        self.warnings: list[str] = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute_update(self, query: Query) -> None:
        if not query.updates:
            raise TranslationError("statement has no UPDATE clause")
        env = self._bind_clauses(query.clauses, query.where, {})
        operations: list[tuple[dict[str, Binding], str, UpdateOp]] = []
        total_ops = 0
        has_nested = False
        for clause in query.updates:
            for operation in clause.operations:
                total_ops += 1
                if isinstance(operation, SubUpdate):
                    has_nested = True
        if total_ops > 1 or has_nested:
            env = self._materialize_env(env)
        # Pre-bind nested updates over the (pre-update) state.
        for clause in query.updates:
            if clause.target_variable not in env:
                raise TranslationError(
                    f"UPDATE target ${clause.target_variable} is not bound"
                )
            for operation in clause.operations:
                operations.extend(
                    self._prebind(env, clause.target_variable, operation)
                )
        for scope, target_variable, operation in operations:
            self._execute_op(scope, target_variable, operation)
        self.db.commit()

    def _prebind(
        self,
        env: dict[str, Binding],
        target_variable: str,
        operation: UpdateOp,
    ) -> list[tuple[dict[str, Binding], str, UpdateOp]]:
        if not isinstance(operation, SubUpdate):
            return [(env, target_variable, operation)]
        nested_env = self._bind_clauses(
            operation.clauses, operation.predicates, env
        )
        nested_env = self._materialize_env(nested_env)
        bound: list[tuple[dict[str, Binding], str, UpdateOp]] = []
        for nested_op in operation.operations:
            bound.extend(
                self._prebind(nested_env, operation.target_variable, nested_op)
            )
        return bound

    # ------------------------------------------------------------------
    # Binding clauses
    # ------------------------------------------------------------------
    def _bind_clauses(
        self,
        clauses,
        predicates,
        outer_env: dict[str, Binding],
    ) -> dict[str, Binding]:
        env = dict(outer_env)
        predicate_map = self._group_predicates(predicates)
        for clause in clauses:
            if isinstance(clause, LetClause):
                raise TranslationError(
                    "LET clauses are not supported by the relational translator"
                )
            binding = self._bind_path(env, clause.path)
            for predicate in predicate_map.pop(clause.variable, []):
                binding = self._apply_predicate(binding, predicate)
            env[clause.variable] = binding
        for variable, remaining in predicate_map.items():
            if remaining and variable not in env:
                raise TranslationError(
                    f"WHERE predicate references unbound variable ${variable}"
                )
            for predicate in remaining:
                env[variable] = self._apply_predicate(env[variable], predicate)
        return env

    def _group_predicates(self, predicates) -> dict[str, list[Expr]]:
        grouped: dict[str, list[Expr]] = {}
        for predicate in predicates:
            variable = _predicate_variable(predicate)
            if variable is None:
                raise TranslationError(
                    f"WHERE predicate {predicate!r} does not reference a "
                    "variable the translator can attach it to"
                )
            grouped.setdefault(variable, []).append(predicate)
        return grouped

    def _apply_predicate(self, binding: Binding, predicate: Expr) -> Binding:
        stripped = _strip_variable(predicate)
        if isinstance(binding, TupleBinding):
            return TupleBinding(
                translate_predicate(self.schema, binding.selection, stripped)
            )
        raise TranslationError(
            "WHERE predicates on inlined bindings are not supported"
        )

    def _bind_path(self, env: dict[str, Binding], path: Path) -> Binding:
        element_steps, trailing = _split_trailing(path.steps)
        if isinstance(path.start, DocumentStart):
            if element_steps:
                selection = translate_target_path(
                    self.schema,
                    Path(path.start, tuple(element_steps)),
                    document_name=self.document_name,
                )
            else:
                if (
                    self.document_name is not None
                    and path.start.name != self.document_name
                ):
                    raise TranslationError(
                        f"unknown document {path.start.name!r}; this store "
                        f"serves {self.document_name!r}"
                    )
                selection = TargetSelection(self.schema.root)
        elif isinstance(path.start, VariableStart):
            outer = env.get(path.start.name)
            if outer is None:
                raise TranslationError(f"unbound variable ${path.start.name}")
            if not isinstance(outer, TupleBinding):
                raise TranslationError(
                    f"cannot navigate below inlined binding ${path.start.name}"
                )
            if element_steps:
                selection = translate_relative_path(
                    self.schema,
                    outer.selection,
                    Path(path.start, tuple(element_steps)),
                )
            else:
                selection = outer.selection
        else:
            raise TranslationError(f"cannot bind path starting at {path.start!r}")
        return self._attach_trailing(selection, trailing)

    def _attach_trailing(self, selection: TargetSelection, trailing) -> Binding:
        if trailing is None:
            if selection.is_inlined:
                return InlinedBinding(
                    dataclass_replace(selection, inlined_path=()),
                    "element",
                    path=selection.inlined_path,
                )
            return TupleBinding(selection)
        relation = self.schema.relation(selection.relation)
        inlined_path = selection.inlined_path
        base = dataclass_replace(selection, inlined_path=())
        if isinstance(trailing, AttributeStep):
            attribute = _find_field(
                relation, inlined_path, (FIELD_ATTRIBUTE,), trailing.name
            )
            if attribute is not None:
                return InlinedBinding(base, "attribute", inlined_path, trailing.name)
            refs = _find_field(relation, inlined_path, (FIELD_REFS,), trailing.name)
            if refs is not None:
                return InlinedBinding(base, "refs", inlined_path, trailing.name)
            raise TranslationError(
                f"attribute {trailing.name!r} is not stored on relation "
                f"{relation.name!r} at path {inlined_path}"
            )
        if isinstance(trailing, RefStep):
            if trailing.label == "*":
                fields = [
                    f
                    for f in relation.fields
                    if f.kind == FIELD_REFS and f.path == inlined_path
                ]
                if len(fields) != 1:
                    raise TranslationError(
                        "ref(*, ...) needs exactly one reference attribute on "
                        f"relation {relation.name!r}"
                    )
                name = fields[0].name
            else:
                name = trailing.label
                if _find_field(relation, inlined_path, (FIELD_REFS,), name) is None:
                    raise TranslationError(
                        f"reference {name!r} is not stored on relation "
                        f"{relation.name!r}"
                    )
            return InlinedBinding(
                base, "ref_entry", inlined_path, name, ref_target=trailing.target
            )
        if isinstance(trailing, TextStep):
            if _find_field(relation, inlined_path, (FIELD_PCDATA,)) is None:
                raise TranslationError(
                    f"no PCDATA stored at path {inlined_path} of relation "
                    f"{relation.name!r}"
                )
            return InlinedBinding(base, "pcdata", inlined_path)
        raise TranslationError(f"cannot bind trailing step {trailing!r}")

    # ------------------------------------------------------------------
    # Materialisation (bind-before-update)
    # ------------------------------------------------------------------
    def _materialize_env(self, env: dict[str, Binding]) -> dict[str, Binding]:
        frozen: dict[str, Binding] = {}
        cache: dict[tuple, TargetSelection] = {}
        for variable, binding in env.items():
            if isinstance(binding, TupleBinding):
                frozen[variable] = TupleBinding(
                    self._freeze(binding.selection, cache)
                )
            else:
                frozen[variable] = dataclass_replace(
                    binding, base=self._freeze(binding.base, cache)
                )
        return frozen

    def _freeze(
        self, selection: TargetSelection, cache: dict[tuple, TargetSelection]
    ) -> TargetSelection:
        key = (selection.relation, selection.where_sql, selection.params)
        if key in cache:
            frozen = cache[key]
        else:
            ids = self._selection_ids(selection)
            id_list = ", ".join(str(i) for i in ids) or "NULL"
            frozen = TargetSelection(
                selection.relation,
                f'"{selection.relation}".id IN ({id_list})',
                (),
            )
            cache[key] = frozen
        return dataclass_replace(frozen, inlined_path=selection.inlined_path)

    def _selection_ids(self, selection: TargetSelection) -> list[int]:
        where = f" WHERE {selection.where_sql}" if selection.where_sql else ""
        rows = self.db.query(
            f'SELECT id FROM "{selection.relation}"{where}', selection.params
        )
        return [row[0] for row in rows]

    def _selection_rows(self, selection: TargetSelection) -> list[tuple[int, Optional[int]]]:
        where = f" WHERE {selection.where_sql}" if selection.where_sql else ""
        return self.db.query(
            f'SELECT id, parentId FROM "{selection.relation}"{where}',
            selection.params,
        )

    # ------------------------------------------------------------------
    # Operation execution
    # ------------------------------------------------------------------
    def _execute_op(
        self,
        env: dict[str, Binding],
        target_variable: str,
        operation: UpdateOp,
    ) -> None:
        target = env[target_variable]
        if not isinstance(target, TupleBinding):
            raise TranslationError(
                f"UPDATE target ${target_variable} must bind whole elements"
            )
        if isinstance(operation, Delete):
            self._execute_delete(env, operation)
        elif isinstance(operation, Insert):
            self._execute_insert(env, target, operation.content)
        elif isinstance(operation, (InsertBefore, InsertAfter)):
            self._execute_positional(env, target, operation)
        elif isinstance(operation, Replace):
            self._execute_replace(env, target, operation)
        elif isinstance(operation, Rename):
            self._execute_rename(env, operation)
        else:
            raise TranslationError(f"unsupported operation {operation!r}")

    # -- DELETE ---------------------------------------------------------
    def _execute_delete(self, env: dict[str, Binding], operation: Delete) -> None:
        binding = self._operand_binding(env, operation.child)
        if isinstance(binding, TupleBinding):
            # Complex delete: subtree stored across relations.
            selection = binding.selection
            self.delete_method.delete(
                self.db,
                self.schema,
                selection.relation,
                selection.where_sql,
                selection.params,
            )
            return
        # Simple delete: NULL out the inlined columns.
        relation = self.schema.relation(binding.base.relation)
        if binding.kind == "element":
            columns = [
                f for f in relation.fields if _path_under(f.path, binding.path)
            ]
            if not columns:
                raise TranslationError(
                    f"no stored columns under path {binding.path} of "
                    f"{relation.name!r}"
                )
            self._update_set(
                binding.base, {f.column: None for f in columns}
            )
        elif binding.kind in ("attribute", "refs"):
            field = _find_field(
                relation,
                binding.path,
                (FIELD_ATTRIBUTE, FIELD_REFS),
                binding.name,
            )
            assert field is not None
            self._update_set(binding.base, {field.column: None})
        elif binding.kind == "pcdata":
            field = _find_field(relation, binding.path, (FIELD_PCDATA,))
            assert field is not None
            self._update_set(binding.base, {field.column: None})
        elif binding.kind == "ref_entry":
            self._delete_ref_entry(binding)
        else:
            raise TranslationError(f"cannot delete binding kind {binding.kind!r}")

    def _delete_ref_entry(self, binding: InlinedBinding) -> None:
        relation = self.schema.relation(binding.base.relation)
        field = _find_field(relation, binding.path, (FIELD_REFS,), binding.name)
        assert field is not None
        column = f'"{field.column}"'
        if binding.ref_target == "*":
            self._update_set(binding.base, {field.column: None})
            return
        where = f" WHERE {binding.base.where_sql}" if binding.base.where_sql else ""
        # Remove the entry from the space-separated list; NULL the column
        # if it empties (the in-memory model drops empty lists too).
        self.db.execute(
            f'UPDATE "{relation.name}" SET {column} = '
            f"NULLIF(TRIM(REPLACE(' ' || {column} || ' ', ' ' || ? || ' ', ' ')), '')"
            f"{where}",
            (binding.ref_target,) + binding.base.params,
        )

    # -- INSERT ---------------------------------------------------------
    def _execute_insert(
        self,
        env: dict[str, Binding],
        target: TupleBinding,
        content,
    ) -> None:
        relation = self.schema.relation(target.selection.relation)
        if isinstance(content, str):
            field = _find_field(relation, (), (FIELD_PCDATA,))
            if field is None:
                raise TranslationError(
                    f"relation {relation.name!r} stores no PCDATA to append to"
                )
            where = self._where(target.selection)
            self.db.execute(
                f'UPDATE "{relation.name}" SET "{field.column}" = '
                f'COALESCE("{field.column}", \'\') || ?{where}',
                (content,) + target.selection.params,
            )
            return
        if isinstance(content, Attribute):
            field = _find_field(relation, (), (FIELD_ATTRIBUTE,), content.name)
            if field is None:
                refs = _find_field(relation, (), (FIELD_REFS,), content.name)
                if refs is not None:
                    self._append_ref(target.selection, refs, content.value)
                    return
                raise TranslationError(
                    f"attribute {content.name!r} is not stored on relation "
                    f"{relation.name!r}"
                )
            self._check_unoccupied(target.selection, field)
            self._update_set(target.selection, {field.column: content.value})
            return
        if isinstance(content, RefContent):
            field = _find_field(relation, (), (FIELD_REFS,), content.label)
            if field is None:
                raise TranslationError(
                    f"reference {content.label!r} is not stored on relation "
                    f"{relation.name!r}"
                )
            self._append_ref(target.selection, field, content.target)
            return
        if isinstance(content, Element):
            self._insert_element_content(target, relation, content)
            return
        if isinstance(content, VarOperand):
            self._insert_copy(env, target, content)
            return
        raise TranslationError(f"unsupported insert content {content!r}")

    def _insert_element_content(
        self,
        target: TupleBinding,
        relation: Relation,
        element: Element,
    ) -> None:
        child = _child_relation_for_tag(self.schema, relation, element.name)
        if child is not None:
            for target_id in self._selection_ids(target.selection):
                shred_element(
                    self.db, self.schema, child, element, target_id, self.allocator
                )
            return
        # Fully inlined content: set every column the element maps to.
        prefix = (element.name,)
        fields = [f for f in relation.fields if _path_under(f.path, prefix)]
        if not fields:
            raise TranslationError(
                f"element <{element.name}> maps to neither a child relation nor "
                f"inlined columns of {relation.name!r}"
            )
        # Paper §6.2: warn when inserting "over" a once-only item.
        marker = _find_field(relation, prefix, (FIELD_PCDATA,)) or _find_field(
            relation, prefix, (FIELD_PRESENCE,)
        )
        if marker is not None:
            self._check_unoccupied(target.selection, marker)
        wrapper = Element("wrapper")
        wrapper.append_child(element)
        assignments = {}
        for field in fields:
            assignments[field.column] = extract_field(wrapper, field)
        self._update_set(target.selection, assignments)

    def _insert_copy(
        self,
        env: dict[str, Binding],
        target: TupleBinding,
        content: VarOperand,
    ) -> None:
        source = env.get(content.name)
        if source is None:
            raise TranslationError(f"unbound content variable ${content.name}")
        if not isinstance(source, TupleBinding):
            raise TranslationError(
                "only whole-element bindings can be copied as content"
            )
        source_relation = self.schema.relation(source.selection.relation)
        target_relation = self.schema.relation(target.selection.relation)
        if source_relation.parent != target_relation.name and not (
            source_relation.name
            in target_relation.children
        ):
            # The copy must land where its tag is a child relation of the
            # target; same-relation copies (replicating subtrees under the
            # same parent kind) are the common, supported case.
            raise TranslationError(
                f"cannot copy {source_relation.name!r} subtrees under "
                f"{target_relation.name!r} tuples: no child relation matches"
            )
        for target_id in self._selection_ids(target.selection):
            self.insert_method.insert_copy(
                self.db,
                self.schema,
                self.allocator,
                source.selection.relation,
                source.selection.where_sql,
                source.selection.params,
                target_id,
            )

    def _execute_positional(
        self,
        env: dict[str, Binding],
        target: TupleBinding,
        operation,
    ) -> None:
        anchor = self._operand_binding(env, operation.anchor)
        before = isinstance(operation, InsertBefore)
        if (
            isinstance(anchor, InlinedBinding)
            and anchor.kind == "ref_entry"
            and isinstance(operation.content, (str, RefContent))
        ):
            # IDREFS order lives inside one column, so positional reference
            # inserts are honoured via string surgery.
            new_target = (
                operation.content
                if isinstance(operation.content, str)
                else operation.content.target
            )
            if isinstance(operation.content, RefContent) and (
                operation.content.label != anchor.name
            ):
                raise TranslationError(
                    f"reference labelled {operation.content.label!r} cannot "
                    f"enter the {anchor.name!r} list"
                )
            relation = self.schema.relation(anchor.base.relation)
            field = _find_field(relation, anchor.path, (FIELD_REFS,), anchor.name)
            assert field is not None
            column = f'"{field.column}"'
            pair = f"{new_target} {anchor.ref_target}" if before else f"{anchor.ref_target} {new_target}"
            where = self._where(anchor.base)
            self.db.execute(
                f'UPDATE "{relation.name}" SET {column} = '
                f"TRIM(REPLACE(' ' || {column} || ' ', ' ' || ? || ' ', ' ' || ? || ' '))"
                f"{where}",
                (anchor.ref_target, pair) + anchor.base.params,
            )
            return
        # Element order is not stored relationally (Section 5.1): degrade.
        message = (
            "positional INSERT degraded to an append: the relational mapping "
            "does not store document order"
        )
        if self.strict_order:
            raise TranslationError(message)
        self.warnings.append(message)
        self._execute_insert(env, target, operation.content)

    # -- REPLACE --------------------------------------------------------
    def _execute_replace(
        self,
        env: dict[str, Binding],
        target: TupleBinding,
        operation: Replace,
    ) -> None:
        child = self._operand_binding(env, operation.child)
        content = operation.content
        if isinstance(child, TupleBinding):
            # Section 6.3's special case first: replacing a tree with the
            # value of one of its own subtrees links the subtree to the new
            # parent and deletes only the remainder — no data is copied.
            if isinstance(content, VarOperand):
                source = env.get(content.name)
                if (
                    isinstance(source, TupleBinding)
                    and source.selection.relation == child.selection.relation
                    and self._try_subtree_promotion(child, source)
                ):
                    return
            # General complex replace: delete the subtrees, insert content
            # under each doomed tuple's parent (Section 6.3).
            rows = self._selection_rows(child.selection)
            self.delete_method.delete(
                self.db,
                self.schema,
                child.selection.relation,
                child.selection.where_sql,
                child.selection.params,
            )
            relation = self.schema.relation(child.selection.relation)
            if isinstance(content, Element):
                for _old_id, parent_id in rows:
                    shred_element(
                        self.db, self.schema, relation, content, parent_id, self.allocator
                    )
                return
            if isinstance(content, VarOperand):
                source = env.get(content.name)
                if not isinstance(source, TupleBinding):
                    raise TranslationError(
                        "REPLACE content must be an element binding or literal"
                    )
                for _old_id, parent_id in rows:
                    self.insert_method.insert_copy(
                        self.db,
                        self.schema,
                        self.allocator,
                        source.selection.relation,
                        source.selection.where_sql,
                        source.selection.params,
                        parent_id,
                    )
                return
            raise TranslationError(
                f"cannot replace whole elements with content {content!r}"
            )
        relation = self.schema.relation(child.base.relation)
        if child.kind in ("element", "pcdata") and isinstance(content, Element):
            if child.kind == "element" and content.name != (
                child.path[-1] if child.path else relation.tag
            ):
                # Replacing <name> with <appellation>: the column set of the
                # new tag must exist; inlined mappings fix the tag per
                # column, so a cross-tag replace is a rename + set.
                renamed = self._counterpart_fields(
                    relation, child.path, (content.name,)
                )
                assignments: dict[str, Optional[str]] = {}
                wrapper = Element("wrapper")
                wrapper.append_child(content)
                for old_field, new_field in renamed:
                    assignments[old_field.column] = None
                    assignments[new_field.column] = extract_field(wrapper, new_field)
                self._update_set(child.base, assignments)
                return
            wrapper = Element("wrapper")
            wrapper.append_child(content)
            fields = [
                f for f in relation.fields if _path_under(f.path, child.path or (content.name,))
            ]
            if not fields:
                raise TranslationError(
                    f"element <{content.name}> maps to no stored columns at "
                    f"path {child.path} of relation {relation.name!r}"
                )
            assignments = {f.column: extract_field(wrapper, f) for f in fields}
            self._update_set(child.base, assignments)
            return
        if child.kind == "pcdata" and isinstance(content, str):
            field = _find_field(relation, child.path, (FIELD_PCDATA,))
            assert field is not None
            self._update_set(child.base, {field.column: content})
            return
        if child.kind == "attribute" and isinstance(content, Attribute):
            old_field = _find_field(
                relation, child.path, (FIELD_ATTRIBUTE,), child.name
            )
            assert old_field is not None
            if content.name == child.name:
                self._update_set(child.base, {old_field.column: content.value})
                return
            new_field = _find_field(
                relation, child.path, (FIELD_ATTRIBUTE,), content.name
            )
            if new_field is None:
                raise TranslationError(
                    f"attribute {content.name!r} is not stored on relation "
                    f"{relation.name!r}"
                )
            self._update_set(
                child.base, {old_field.column: None, new_field.column: content.value}
            )
            return
        if child.kind == "ref_entry":
            label, new_target = _ref_content(content)
            if label and label != child.name:
                raise TranslationError(
                    f"a reference can only be replaced by one with the same "
                    f"label ({child.name!r})"
                )
            field = _find_field(relation, child.path, (FIELD_REFS,), child.name)
            assert field is not None
            column = f'"{field.column}"'
            where = self._where(child.base)
            self.db.execute(
                f'UPDATE "{relation.name}" SET {column} = '
                f"TRIM(REPLACE(' ' || {column} || ' ', ' ' || ? || ' ', ' ' || ? || ' '))"
                f"{where}",
                (child.ref_target, new_target) + child.base.params,
            )
            return
        if child.kind == "refs":
            label, new_target = _ref_content(content)
            if label and label != child.name:
                raise TranslationError(
                    f"a reference list can only be replaced by references with "
                    f"the same label ({child.name!r})"
                )
            field = _find_field(relation, child.path, (FIELD_REFS,), child.name)
            assert field is not None
            self._update_set(child.base, {field.column: new_target})
            return
        raise TranslationError(
            f"cannot replace binding kind {child.kind!r} with {content!r}"
        )

    def _try_subtree_promotion(self, child: TupleBinding, source: TupleBinding) -> bool:
        """Attempt §6.3's optimisation: when the replacement is a subtree
        of the replaced tree itself, re-link it instead of copying.

        Applies when there is exactly one doomed tuple and every source
        tuple sits strictly inside its subtree.  Returns True if the
        replace was performed this way."""
        doomed = self._selection_rows(child.selection)
        if len(doomed) != 1:
            return False
        doomed_id, new_parent = doomed[0]
        source_ids = self._selection_ids(source.selection)
        if not source_ids or doomed_id in source_ids:
            return False
        relation = child.selection.relation
        for source_id in source_ids:
            if not self._is_descendant(relation, source_id, doomed_id):
                return False
        # 1. Link the promoted subtree roots to the doomed tuple's parent.
        id_list = ", ".join(str(i) for i in source_ids)
        self.db.execute(
            f'UPDATE "{relation}" SET parentId = ? WHERE id IN ({id_list})',
            (new_parent,),
        )
        # 2. Delete the remainder of the old tree (the promoted subtrees
        #    no longer hang under it, so the strategy cannot reach them).
        self.delete_method.delete(
            self.db, self.schema, relation, f'"{relation}".id = ?', (doomed_id,)
        )
        return True

    def _is_descendant(self, relation: str, node_id: int, ancestor_id: int) -> bool:
        """Walk parentId links within (and above) ``relation``.

        Only same-relation hops can reach ``ancestor_id`` (it lives in
        ``relation``), so the walk stays inside one table — the common
        case is a recursive relation, where this is exactly the paper's
        "subtree of the same kind of element"."""
        current = node_id
        for _ in range(100_000):  # cycle guard
            row = self.db.query_one(
                f'SELECT parentId FROM "{relation}" WHERE id = ?', (current,)
            )
            if row is None or row[0] is None:
                return False
            current = row[0]
            if current == ancestor_id:
                return True
        return False

    # -- RENAME ---------------------------------------------------------
    def _execute_rename(self, env: dict[str, Binding], operation: Rename) -> None:
        binding = self._operand_binding(env, operation.child)
        if isinstance(binding, TupleBinding):
            self._rename_relation_tuples(binding, operation.name)
            return
        relation = self.schema.relation(binding.base.relation)
        if binding.kind == "attribute":
            old_field = _find_field(
                relation, binding.path, (FIELD_ATTRIBUTE,), binding.name
            )
            new_field = _find_field(
                relation, binding.path, (FIELD_ATTRIBUTE,), operation.name
            )
            if old_field is None or new_field is None:
                raise TranslationError(
                    f"attribute rename needs both columns stored on "
                    f"{relation.name!r}"
                )
            self._move_column(binding.base, relation, old_field, new_field)
            return
        if binding.kind in ("refs", "ref_entry"):
            # §3.2: renaming one IDREF renames the entire IDREFS list.
            old_field = _find_field(relation, binding.path, (FIELD_REFS,), binding.name)
            new_field = _find_field(
                relation, binding.path, (FIELD_REFS,), operation.name
            )
            if old_field is None or new_field is None:
                raise TranslationError(
                    f"reference rename needs both columns stored on "
                    f"{relation.name!r}"
                )
            self._move_column(binding.base, relation, old_field, new_field)
            return
        if binding.kind == "element":
            pairs = self._counterpart_fields(
                relation, binding.path, binding.path[:-1] + (operation.name,)
            )
            where = self._where(binding.base)
            assignments = ", ".join(
                f'"{new.column}" = "{old.column}", "{old.column}" = NULL'
                for old, new in pairs
            )
            self.db.execute(
                f'UPDATE "{relation.name}" SET {assignments}{where}',
                binding.base.params,
            )
            return
        raise TranslationError(f"cannot rename binding kind {binding.kind!r}")

    def _rename_relation_tuples(self, binding: TupleBinding, new_name: str) -> None:
        """Move tuples between same-shaped sibling relations.

        The paper's optimisation: only the top-level table changes; ids
        are preserved, so child linkage would survive — but moving child
        rows between differently-rooted child relations is out of scope,
        hence the leaf-relation restriction.
        """
        relation = self.schema.relation(binding.selection.relation)
        if relation.parent is None:
            raise TranslationError("cannot rename the document root")
        siblings = self.schema.relation(relation.parent).children
        target_relation = None
        for sibling_name in siblings:
            sibling = self.schema.relation(sibling_name)
            if sibling.tag == new_name:
                target_relation = sibling
                break
        if target_relation is None:
            raise TranslationError(
                f"no sibling relation with tag {new_name!r} to rename into"
            )
        if relation.children or target_relation.children:
            raise TranslationError(
                "renaming non-leaf elements across relations is not supported"
            )
        # Columns are tag-named, so compare field *signatures* (kind, path
        # relative to the anchor, attribute name) and map positionally.
        def signature(rel: Relation):
            return [(f.kind, f.path, f.name) for f in rel.fields]

        if signature(relation) != signature(target_relation):
            raise TranslationError(
                f"relations {relation.name!r} and {target_relation.name!r} "
                "store different content; rename cannot move the data"
            )
        where = self._where(binding.selection)
        source_columns = ", ".join(f'"{c}"' for c in relation.all_columns)
        target_columns = ", ".join(f'"{c}"' for c in target_relation.all_columns)
        self.db.execute(
            f'INSERT INTO "{target_relation.name}" ({target_columns}) '
            f'SELECT {source_columns} FROM "{relation.name}"{where}',
            binding.selection.params,
        )
        self.db.execute(
            f'DELETE FROM "{relation.name}"{where}', binding.selection.params
        )

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _operand_binding(self, env: dict[str, Binding], operand) -> Binding:
        if isinstance(operand, VarOperand):
            binding = env.get(operand.name)
            if binding is None:
                raise TranslationError(f"unbound variable ${operand.name}")
            return binding
        raise TranslationError(
            f"operand {operand!r} must be a variable in the relational translator"
        )

    def _where(self, selection: TargetSelection) -> str:
        return f" WHERE {selection.where_sql}" if selection.where_sql else ""

    def _update_set(self, selection: TargetSelection, assignments: dict) -> None:
        if not assignments:
            return
        columns = ", ".join(f'"{column}" = ?' for column in assignments)
        where = self._where(selection)
        relation = selection.relation
        self.db.execute(
            f'UPDATE "{relation}" SET {columns}{where}',
            tuple(assignments.values()) + selection.params,
        )

    def _append_ref(
        self, selection: TargetSelection, field: InlinedField, target: str
    ) -> None:
        column = f'"{field.column}"'
        where = self._where(selection)
        self.db.execute(
            f'UPDATE "{selection.relation}" SET {column} = '
            f"CASE WHEN {column} IS NULL OR {column} = '' THEN ? "
            f"ELSE {column} || ' ' || ? END{where}",
            (target, target) + selection.params,
        )

    def _check_unoccupied(
        self, selection: TargetSelection, field: InlinedField
    ) -> None:
        """Paper §6.2: query before inserting over a once-only item."""
        where = self._where(selection)
        conjunction = "AND" if where else "WHERE"
        row = self.db.query_one(
            f'SELECT COUNT(*) FROM "{selection.relation}"{where} {conjunction} '
            f'"{field.column}" IS NOT NULL',
            selection.params,
        )
        if row and row[0]:
            self.warnings.append(
                f"insert over occupied item {field.column!r} on "
                f"{selection.relation!r} ({row[0]} tuples overwritten)"
            )

    def _move_column(
        self,
        selection: TargetSelection,
        relation: Relation,
        old_field: InlinedField,
        new_field: InlinedField,
    ) -> None:
        where = self._where(selection)
        self.db.execute(
            f'UPDATE "{relation.name}" SET "{new_field.column}" = '
            f'"{old_field.column}", "{old_field.column}" = NULL{where}',
            selection.params,
        )

    def _counterpart_fields(
        self,
        relation: Relation,
        old_prefix: tuple[str, ...],
        new_prefix: tuple[str, ...],
    ) -> list[tuple[InlinedField, InlinedField]]:
        pairs: list[tuple[InlinedField, InlinedField]] = []
        for field in relation.fields:
            if not _path_under(field.path, old_prefix):
                continue
            suffix = field.path[len(old_prefix):]
            counterpart = None
            for candidate in relation.fields:
                if (
                    candidate.path == new_prefix + suffix
                    and candidate.kind == field.kind
                    and candidate.name == field.name
                ):
                    counterpart = candidate
                    break
            if counterpart is None:
                raise TranslationError(
                    f"no stored counterpart at {new_prefix + suffix} for column "
                    f"{field.column!r}; the DTD does not allow this rename"
                )
            pairs.append((field, counterpart))
        if not pairs:
            raise TranslationError(
                f"no stored columns under path {old_prefix} of {relation.name!r}"
            )
        return pairs


# ----------------------------------------------------------------------
# Module helpers
# ----------------------------------------------------------------------
def _split_trailing(steps):
    """Separate a path into leading element steps and one trailing
    attribute/ref/text step (or None)."""
    if steps and isinstance(steps[-1], (AttributeStep, RefStep, TextStep)):
        return list(steps[:-1]), steps[-1]
    return list(steps), None


def _find_field(
    relation: Relation,
    path: tuple[str, ...],
    kinds: tuple[str, ...],
    name: str = "",
) -> Optional[InlinedField]:
    for field in relation.fields:
        if field.path == path and field.kind in kinds:
            if not name or field.name == name:
                return field
    return None


def _path_under(path: tuple[str, ...], prefix: tuple[str, ...]) -> bool:
    return path[: len(prefix)] == prefix


def _child_relation_for_tag(
    schema: MappingSchema, relation: Relation, tag: str
) -> Optional[Relation]:
    for child_name in relation.children:
        child = schema.relation(child_name)
        if child.tag == tag and child.parent_path == ():
            return child
    return None


def _ref_content(content) -> tuple[str, str]:
    if isinstance(content, RefContent):
        return content.label, content.target
    if isinstance(content, Attribute):
        return content.name, content.value
    if isinstance(content, str):
        return "", content
    raise TranslationError(f"cannot use {content!r} as reference content")


def _predicate_variable(predicate: Expr) -> Optional[str]:
    """The single variable a WHERE predicate constrains, if exactly one."""
    variables: set[str] = set()
    _collect_variables(predicate, variables)
    if len(variables) == 1:
        return variables.pop()
    return None


def _collect_variables(node, variables: set[str]) -> None:
    if isinstance(node, Path):
        if isinstance(node.start, VariableStart):
            variables.add(node.start.name)
        for step in node.steps:
            if isinstance(step, ChildStep):
                for predicate in step.predicates:
                    _collect_variables(predicate, variables)
        return
    if hasattr(node, "path"):
        _collect_variables(node.path, variables)
    if hasattr(node, "left"):
        _collect_variables(node.left, variables)
    if hasattr(node, "right"):
        _collect_variables(node.right, variables)


def _strip_variable(predicate: Expr) -> Expr:
    """Rewrite ``$x/...`` paths in a predicate to context-relative paths
    (so they translate against $x's relation)."""
    from repro.xpath.ast import (
        BooleanOp,
        Comparison,
        ContextStart,
        Exists,
        IndexCall,
        PathValue,
    )

    def strip_path(path: Path) -> Path:
        if isinstance(path.start, VariableStart):
            return Path(ContextStart(), path.steps)
        return path

    if isinstance(predicate, PathValue):
        return PathValue(strip_path(predicate.path))
    if isinstance(predicate, Exists):
        return Exists(strip_path(predicate.path))
    if isinstance(predicate, Comparison):
        return Comparison(
            predicate.op,
            _strip_variable(predicate.left),
            _strip_variable(predicate.right),
        )
    if isinstance(predicate, BooleanOp):
        return BooleanOp(
            predicate.op,
            _strip_variable(predicate.left),
            _strip_variable(predicate.right),
        )
    if isinstance(predicate, IndexCall):
        raise TranslationError(
            "index() predicates are not supported by the relational store "
            "(document order is not stored)"
        )
    return predicate
