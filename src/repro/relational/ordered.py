"""Order-preserving relational storage (the paper's §8 future work).

The paper's conclusion sketches the problem: a query-only repository
keeps document order by storing each element's child position and
sorting on output, but *updates* that insert between existing siblings
must "push" the positions of old data forward.  This module implements
the sketch plus the two classic maintenance policies:

* :class:`RenumberPolicy` — dense positions 0,1,2,...; an insert at
  position *k* first shifts every following sibling
  (``UPDATE ... SET pos = pos + 1 WHERE parentId = ? AND pos >= ?``).
  Simple, but each front insert costs O(siblings).
* :class:`GapPolicy` — positions spaced ``gap`` apart (…1024, 2048,…);
  an insert takes the midpoint between its neighbours and only when a
  gap is exhausted are that parent's children renumbered.  Amortises
  the push.

:class:`OrderedStore` keeps one ``doc_order`` side table
(tuple id → parent id → position) next to any inlining-mapped store, so
the unordered schema and all of Section 6's strategies keep working;
order-aware reads sort child tuples by position, and the ablation
benchmark ``benchmarks/test_ablation_order.py`` compares the policies'
push costs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import StorageError
from repro.relational.store import XmlStore

ORDER_TABLE = "doc_order"


class OrderPolicy:
    """How positions are assigned and maintained."""

    name = "abstract"

    def initial_positions(self, count: int) -> list[int]:
        raise NotImplementedError

    def insert_at(self, store: "OrderedStore", parent_id: int, index: int) -> int:
        """Make room at child index ``index`` under ``parent_id`` and
        return the position value the new tuple should use."""
        raise NotImplementedError


class RenumberPolicy(OrderPolicy):
    """Dense 0..n-1 positions; inserts shift all following siblings."""

    name = "renumber"

    def initial_positions(self, count: int) -> list[int]:
        return list(range(count))

    def insert_at(self, store: "OrderedStore", parent_id: int, index: int) -> int:
        siblings = store.child_positions(parent_id)
        if index < 0 or index > len(siblings):
            raise StorageError(f"insert index {index} out of range")
        position = siblings[index][1] if index < len(siblings) else len(siblings)
        # The paper's "push": one UPDATE shifting everything at or after.
        store.db.execute(
            f"UPDATE {ORDER_TABLE} SET pos = pos + 1 "
            "WHERE parentId = ? AND pos >= ?",
            (parent_id, position),
        )
        return position


class GapPolicy(OrderPolicy):
    """Spaced positions; inserts bisect, renumbering only when full."""

    name = "gap"

    def __init__(self, gap: int = 1024) -> None:
        if gap < 2:
            raise ValueError("gap must be at least 2")
        self.gap = gap
        self.rebalances = 0  # observable in the ablation

    def initial_positions(self, count: int) -> list[int]:
        return [self.gap * (i + 1) for i in range(count)]

    def insert_at(self, store: "OrderedStore", parent_id: int, index: int) -> int:
        siblings = store.child_positions(parent_id)
        if index < 0 or index > len(siblings):
            raise StorageError(f"insert index {index} out of range")
        before = siblings[index - 1][1] if index > 0 else 0
        after = siblings[index][1] if index < len(siblings) else before + 2 * self.gap
        if after - before > 1:
            return (before + after) // 2
        # Gap exhausted: renumber this parent's children, then retry.
        self.rebalances += 1
        store.db.execute(
            f"UPDATE {ORDER_TABLE} SET pos = pos * ? WHERE parentId = ?",
            (self.gap, parent_id),
        )
        return self.insert_at(store, parent_id, index)


class OrderedStore:
    """Document order on top of an (unordered) :class:`XmlStore`.

    Tracks, for every relation-anchored tuple, its position among its
    parent tuple's relation-anchored children.  Inlined elements keep
    their mapping-determined positions (they occur at most once, so the
    DTD already fixes where they belong).
    """

    def __init__(self, store: XmlStore, policy: Optional[OrderPolicy] = None) -> None:
        self.store = store
        self.db = store.db
        self.policy = policy or RenumberPolicy()
        self.db.execute(
            f"CREATE TABLE IF NOT EXISTS {ORDER_TABLE} ("
            "id INTEGER PRIMARY KEY, parentId INTEGER, pos INTEGER)"
        )
        self.db.execute(
            f"CREATE INDEX IF NOT EXISTS idx_{ORDER_TABLE}_parent "
            f"ON {ORDER_TABLE} (parentId, pos)"
        )

    # ------------------------------------------------------------------
    # Building positions
    # ------------------------------------------------------------------
    def index_existing(self) -> None:
        """Assign positions to all loaded tuples, in id order per parent
        (the shredder assigns DFS ids, so id order is document order)."""
        rows: list[tuple[int, int, int]] = []
        parents: dict[int, list[int]] = {}
        for relation in self.store.schema.iter_top_down():
            for tuple_id, parent_id in self.db.query(
                f'SELECT id, parentId FROM "{relation.name}" WHERE parentId IS NOT NULL'
            ):
                parents.setdefault(parent_id, []).append(tuple_id)
        for parent_id, children in parents.items():
            children.sort()
            for index, position in enumerate(self.policy.initial_positions(len(children))):
                rows.append((children[index], parent_id, position))
        self.db.execute(f"DELETE FROM {ORDER_TABLE}")
        self.db.executemany(
            f"INSERT INTO {ORDER_TABLE} (id, parentId, pos) VALUES (?, ?, ?)", rows
        )
        self.db.commit()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def child_positions(self, parent_id: int) -> list[tuple[int, int]]:
        """(tuple id, position) of the parent's children, in order."""
        return self.db.query(
            f"SELECT id, pos FROM {ORDER_TABLE} WHERE parentId = ? ORDER BY pos",
            (parent_id,),
        )

    def ordered_child_ids(self, parent_id: int) -> list[int]:
        return [tuple_id for tuple_id, _pos in self.child_positions(parent_id)]

    def position_of(self, tuple_id: int) -> Optional[int]:
        row = self.db.query_one(
            f"SELECT pos FROM {ORDER_TABLE} WHERE id = ?", (tuple_id,)
        )
        return row[0] if row else None

    # ------------------------------------------------------------------
    # Order-aware mutations
    # ------------------------------------------------------------------
    def register_insert(self, tuple_id: int, parent_id: int, index: int) -> None:
        """Record a new tuple inserted at child index ``index``."""
        position = self.policy.insert_at(self, parent_id, index)
        self.db.execute(
            f"INSERT INTO {ORDER_TABLE} (id, parentId, pos) VALUES (?, ?, ?)",
            (tuple_id, parent_id, position),
        )

    def register_append(self, tuple_id: int, parent_id: int) -> None:
        siblings = self.child_positions(parent_id)
        self.register_insert(tuple_id, parent_id, len(siblings))

    def register_delete(self, tuple_ids: Sequence[int]) -> None:
        if not tuple_ids:
            return
        placeholders = ", ".join("?" for _ in tuple_ids)
        self.db.execute(
            f"DELETE FROM {ORDER_TABLE} WHERE id IN ({placeholders})",
            tuple(tuple_ids),
        )

    def sweep_deleted(self) -> None:
        """Drop order rows whose tuples no longer exist in any relation
        (after a strategy delete ran without order bookkeeping)."""
        union = " UNION ALL ".join(
            f'SELECT id FROM "{relation.name}"'
            for relation in self.store.schema.iter_top_down()
        )
        self.db.execute(
            f"DELETE FROM {ORDER_TABLE} WHERE id NOT IN ({union})"
        )
