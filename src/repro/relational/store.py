"""`XmlStore`: the end-to-end XML repository over SQLite.

Usage::

    store = XmlStore.from_dtd(dtd_text)
    store.load(document)
    store.set_delete_method("per_tuple_trigger")
    store.execute('FOR $c IN document("doc.xml")/CustDB/Customer[Name="John"] '
                  'UPDATE $d { DELETE $c }')      # translated to SQL
    elements = store.query('FOR $c IN .../Customer[Name="John"] RETURN $c')

Queries run through the Sorted Outer Union (Section 5.2); updates run
through the configured delete/insert strategies (Section 6).  The store
keeps the paper's measurement hooks exposed: ``db.counts`` for SQL
statement counts and strategy switching per experiment.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.errors import StorageError, TranslationError
from repro.obs import get_registry, span
from repro.relational.asr import AsrManager
from repro.relational.database import Database
from repro.relational.delete_methods import (
    DELETE_METHODS,
    AsrDelete,
    DeleteMethod,
    IntervalRangeDelete,
)
from repro.relational.idgen import IdAllocator
from repro.relational.inlining import derive_inlining_schema
from repro.relational.insert_methods import (
    INSERT_METHODS,
    AsrInsert,
    InsertMethod,
    IntervalCopyInsert,
)
from repro.relational.interval import IntervalIndex
from repro.relational.outer_union import build_outer_union, reconstruct_elements
from repro.relational.plan_cache import PlanCache, contains_rename
from repro.relational.query_translate import (
    TargetSelection,
    translate_predicate,
    translate_target_path,
)
from repro.relational.schema import MappingSchema
from repro.relational.shredder import create_schema, shred_document
from repro.relational.update_translate import UpdateTranslator, _strip_variable
from repro.xmlmodel.dtd import Dtd, parse_dtd
from repro.xmlmodel.model import Document, Element
from repro.xmlmodel.policy import RefPolicy
from repro.xpath.ast import VariableStart
from repro.xquery.ast import Query
from repro.xquery.cache import parse_cached, statement_cache_stats


class XmlStore:
    """An XML repository with a relational (SQLite) core."""

    def __init__(
        self,
        schema: MappingSchema,
        db: Optional[Database] = None,
        document_name: str = "doc.xml",
        policy: Optional[RefPolicy] = None,
        strict_order: bool = False,
        create: bool = True,
    ) -> None:
        self.schema = schema
        self.db = db or Database()
        self.document_name = document_name
        self.policy = policy or RefPolicy.default()
        self.strict_order = strict_order
        if create:
            create_schema(self.db, schema)
        self.allocator = IdAllocator(self.db)
        self._delete_method: DeleteMethod = DELETE_METHODS["per_tuple_trigger"]()
        self._insert_method: InsertMethod = INSERT_METHODS["table"]()
        self._asr: Optional[AsrManager] = None
        self._interval_index: Optional[IntervalIndex] = None
        if create:
            self._delete_method.install(self.db, self.schema)
        self.plan_cache = PlanCache()
        self.warnings: list[str] = []

    def snapshot(self) -> "XmlStore":
        """A fully independent copy of this store (schema + data +
        installed machinery).  Benchmark runs mutate the copy.

        Trigger DDL and ASR tables travel with the cloned database;
        strategy objects are re-instantiated against the copy.
        """
        copy = self.__class__(
            self.schema,
            db=self.db.clone(),
            document_name=self.document_name,
            policy=self.policy,
            strict_order=self.strict_order,
            create=False,
        )
        if self._asr is not None:
            copy._asr = AsrManager(copy.db, copy.schema)
        copy._delete_method = DELETE_METHODS[self._delete_method.name]()
        if isinstance(copy._delete_method, AsrDelete):
            copy._delete_method.asr = copy._shared_asr()
        if isinstance(copy._delete_method, IntervalRangeDelete):
            copy._delete_method.index = copy._shared_interval()
        copy._insert_method = INSERT_METHODS[self._insert_method.name]()
        if isinstance(copy._insert_method, AsrInsert):
            copy._insert_method.asr = copy._shared_asr()
        if isinstance(copy._insert_method, IntervalCopyInsert):
            copy._insert_method.index = copy._shared_interval()
        return copy

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dtd(
        cls,
        dtd: Union[str, Dtd],
        root: Optional[str] = None,
        db: Optional[Database] = None,
        document_name: str = "doc.xml",
        strict_order: bool = False,
    ) -> "XmlStore":
        """Build a store whose mapping is derived from a DTD."""
        parsed = parse_dtd(dtd) if isinstance(dtd, str) else dtd
        schema = derive_inlining_schema(parsed, root=root)
        policy = RefPolicy.from_dtd(parsed)
        return cls(
            schema,
            db=db,
            document_name=document_name,
            policy=policy,
            strict_order=strict_order,
        )

    def load(self, document: Document) -> int:
        """Shred a document into the store; returns the root tuple id."""
        return shred_document(self.db, self.schema, document, self.allocator)

    # ------------------------------------------------------------------
    # Strategy selection
    # ------------------------------------------------------------------
    @property
    def delete_method(self) -> str:
        return self._delete_method.name

    @property
    def insert_method(self) -> str:
        return self._insert_method.name

    def set_delete_method(self, name: str) -> None:
        """Switch delete strategy, swapping trigger/ASR machinery."""
        if name not in DELETE_METHODS:
            raise StorageError(
                f"unknown delete method {name!r}; choose from "
                f"{sorted(DELETE_METHODS)}"
            )
        if name == self._delete_method.name:
            return
        self._delete_method.uninstall(self.db, self.schema)
        method = DELETE_METHODS[name]()
        if isinstance(method, AsrDelete):
            method.asr = self._shared_asr()
        if isinstance(method, IntervalRangeDelete):
            method.index = self._shared_interval()
        method.install(self.db, self.schema)
        self._delete_method = method

    def set_insert_method(self, name: str) -> None:
        if name not in INSERT_METHODS:
            raise StorageError(
                f"unknown insert method {name!r}; choose from "
                f"{sorted(INSERT_METHODS)}"
            )
        if name == self._insert_method.name:
            return
        self._insert_method.uninstall(self.db, self.schema)
        method = INSERT_METHODS[name]()
        if isinstance(method, AsrInsert):
            method.asr = self._shared_asr()
        if isinstance(method, IntervalCopyInsert):
            method.index = self._shared_interval()
        method.install(self.db, self.schema)
        self._insert_method = method

    def _shared_asr(self) -> AsrManager:
        if self._asr is None:
            self._asr = AsrManager(self.db, self.schema)
        return self._asr

    def _shared_interval(self) -> IntervalIndex:
        """One interval index per store, shared by both interval
        strategies (and owned outright by the interval store subclass)."""
        if self._interval_index is None:
            self._interval_index = IntervalIndex(self.db, self.schema)
        return self._interval_index

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse(self, text: str) -> Query:
        """Parse through the process-wide statement cache."""
        return parse_cached(text, policy=self.policy)

    def execute(self, statement: Union[str, Query]) -> Optional[list[Element]]:
        """Run an XQuery statement: updates mutate the store and return
        None; RETURN queries reconstruct and return elements."""
        query = self.parse(statement) if isinstance(statement, str) else statement
        if query.is_update:
            get_registry().counter("store.updates").inc()
            translator = UpdateTranslator(
                self.db,
                self.schema,
                self.allocator,
                self._delete_method,
                self._insert_method,
                strict_order=self.strict_order,
                document_name=self.document_name,
            )
            try:
                with span("sql.translate", kind="update"):
                    translator.execute_update(query)
            except Exception:
                # A failing sub-operation must not leave a partial update
                # behind (the statement is one logical unit of work).
                self.db.rollback()
                raise
            self.warnings.extend(translator.warnings)
            if contains_rename(query):
                # Rename moves tuples between sibling relations, changing
                # the element-to-relation assignment cached plans baked in.
                self.plan_cache.bump_generation()
            return None
        return self.query(statement if isinstance(statement, str) else query)

    def query(self, statement: Union[str, Query]) -> list[Element]:
        """Run a FLWR statement via the Sorted Outer Union.

        Statement *text* is translated through the per-store plan cache
        (pre-parsed :class:`Query` objects skip it — there is no stable
        key for them); the SQL runs on the reader pool when one is
        configured (:meth:`Database.read_query`).
        """
        text = statement if isinstance(statement, str) else None
        query = self.parse(statement) if isinstance(statement, str) else statement
        if query.is_update:
            raise StorageError("use execute() for update statements")
        if query.returns is None:
            raise StorageError("query has no RETURN clause")
        get_registry().counter("store.queries").inc()
        outer_union = self.plan_cache.get(text) if text is not None else None
        if outer_union is None:
            with span("sql.translate", kind="query"):
                selection = self._query_selection(query)
                outer_union = build_outer_union(
                    self.schema,
                    selection.relation,
                    selection.where_sql,
                    selection.params,
                )
            if text is not None:
                self.plan_cache.put(text, outer_union)
        positions = self._order_positions()
        if positions is None:
            # Unordered store: safe on a pooled snapshot reader.
            rows = self.db.read_query(outer_union.sql, outer_union.params)
        else:
            # Ordered store: positions come off the writer connection, so
            # the rows must too (a snapshot could skew against doc_order).
            rows = self.db.query(outer_union.sql, outer_union.params)
        with span("store.reconstruct", rows=len(rows)):
            return reconstruct_elements(
                self.schema,
                outer_union,
                rows,
                positions=positions,
                positions_global=self._positions_global,
            )

    #: Whether :meth:`_order_positions` orders the whole document (the
    #: interval store's ``pre`` ordinals) rather than siblings per
    #: parent (``doc_order``); global maps also sort top-level results.
    _positions_global = False

    def _order_positions(self):
        """Tuple-id -> position map for order-aware reconstruction;
        None in the (paper-default) unordered store."""
        return None

    def _interval_resolver(self):
        """Descendant-step lowering hook for translation; the interval
        store returns a callable that rewrites relation-to-relation
        descendant steps as pre/post range predicates."""
        return None

    def _query_selection(self, query: Query) -> TargetSelection:
        """Resolve a FLWR query's RETURN target to a tuple selection."""
        selections: dict[str, TargetSelection] = {}
        predicate_groups: dict[str, list] = {}
        for predicate in query.where:
            variables: set[str] = set()
            from repro.relational.update_translate import _collect_variables

            _collect_variables(predicate, variables)
            if len(variables) != 1:
                raise TranslationError(
                    f"WHERE predicate {predicate!r} must reference exactly one "
                    "variable"
                )
            predicate_groups.setdefault(variables.pop(), []).append(predicate)
        from repro.relational.query_translate import translate_relative_path
        from repro.updates.binding import LetClause

        resolver = self._interval_resolver()
        for clause in query.clauses:
            if isinstance(clause, LetClause):
                raise TranslationError(
                    "LET clauses are not supported by the relational store"
                )
            path = clause.path
            if isinstance(path.start, VariableStart):
                base = selections.get(path.start.name)
                if base is None:
                    raise TranslationError(f"unbound variable ${path.start.name}")
                selection = translate_relative_path(
                    self.schema, base, path, resolver=resolver
                )
            else:
                selection = translate_target_path(
                    self.schema, path, document_name=self.document_name,
                    resolver=resolver,
                )
            for predicate in predicate_groups.pop(clause.variable, []):
                selection = translate_predicate(
                    self.schema, selection, _strip_variable(predicate)
                )
            selections[clause.variable] = selection
        returns = query.returns
        assert returns is not None
        if isinstance(returns.start, VariableStart) and not returns.steps:
            name = returns.start.name
            if name not in selections:
                raise TranslationError(f"RETURN references unbound ${name}")
            result = selections[name]
        elif isinstance(returns.start, VariableStart):
            base = selections.get(returns.start.name)
            if base is None:
                raise TranslationError(
                    f"RETURN references unbound ${returns.start.name}"
                )
            result = translate_relative_path(
                self.schema, base, returns, resolver=resolver
            )
        else:
            result = translate_target_path(
                self.schema, returns, document_name=self.document_name,
                resolver=resolver,
            )
        if result.is_inlined:
            raise TranslationError(
                "RETURN of inlined elements is not supported; return the "
                "enclosing element"
            )
        return result

    # ------------------------------------------------------------------
    # Direct (benchmark-facing) operations
    # ------------------------------------------------------------------
    def delete_subtrees(
        self, relation: str, where_sql: str = "", params: Sequence = ()
    ) -> None:
        """Delete subtrees with the active strategy (used by benchmarks)."""
        self._delete_method.delete(self.db, self.schema, relation, where_sql, params)

    def copy_subtrees(
        self,
        relation: str,
        where_sql: str,
        params: Sequence,
        new_parent_id: int,
    ) -> None:
        """Copy subtrees with the active strategy (used by benchmarks)."""
        self._insert_method.insert_copy(
            self.db,
            self.schema,
            self.allocator,
            relation,
            where_sql,
            params,
            new_parent_id,
        )

    def to_document(self) -> Document:
        """Reconstruct the full stored document (Sorted Outer Union over
        the root relation)."""
        outer_union = build_outer_union(self.schema, self.schema.root)
        rows = self.db.query(outer_union.sql, outer_union.params)
        elements = reconstruct_elements(
            self.schema,
            outer_union,
            rows,
            positions=self._order_positions(),
            positions_global=self._positions_global,
        )
        if len(elements) != 1:
            raise StorageError(
                f"expected exactly one root tuple, found {len(elements)}"
            )
        return Document(elements[0], id_attribute=self.policy.id_attribute)

    def tuple_count(self, relation: Optional[str] = None) -> int:
        if relation is not None:
            return self.db.query_one(f'SELECT COUNT(*) FROM "{relation}"')[0]
        total = 0
        for name in self.schema.relations:
            total += self.db.query_one(f'SELECT COUNT(*) FROM "{name}"')[0]
        return total

    def configure_readers(self, readers: int) -> None:
        """Enable (``readers >= 1``) or disable (0) the snapshot reader
        pool behind :meth:`query`; see :meth:`Database.configure_pool`."""
        self.db.configure_pool(readers)

    def cache_stats(self) -> dict:
        """Read-path snapshot: statement cache, plan cache, reader pool."""
        return {
            "statement": statement_cache_stats(),
            "plan": self.plan_cache.stats(),
            "pool": self.db.pool_stats(),
        }

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "XmlStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
