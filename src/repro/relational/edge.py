"""The Edge mapping (Florescu & Kossmann [10], summarised in §5.1).

Every XML object — element, attribute, PCDATA, reference — is one tuple
in a single ``edge`` relation.  Its advantage is schema independence
(no DTD needed); its drawback, which the paper calls out, is the heavy
fragmentation: traversing structure or emitting XML requires a join (or
self-join) per step.

The paper states the alternative schemes "did not yield any different
results or insights" for updates; the ablation benchmark
(`benchmarks/test_ablation_mappings.py`) lets you see the fragmentation
cost directly against Shared Inlining.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.relational.database import Database
from repro.relational.idgen import IdAllocator
from repro.xmlmodel.model import Document, Element, Text

KIND_ELEMENT = "elem"
KIND_ATTRIBUTE = "attr"
KIND_TEXT = "text"
KIND_REF = "ref"

EDGE_TABLE_SQL = """\
CREATE TABLE edge (
    id INTEGER PRIMARY KEY,
    parentId INTEGER,
    kind TEXT NOT NULL,
    name TEXT,
    value TEXT,
    ordinal INTEGER
)"""


class EdgeMapping:
    """Load, query, and update documents stored in a single edge table."""

    def __init__(self, db: Optional[Database] = None) -> None:
        self.db = db or Database()
        self.db.execute(EDGE_TABLE_SQL)
        self.db.execute("CREATE INDEX idx_edge_parent ON edge (parentId)")
        self.db.execute("CREATE INDEX idx_edge_name ON edge (name)")
        self.allocator = IdAllocator(self.db)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, document: Document) -> int:
        rows: list[tuple] = []
        total = _count_objects(document.root)
        next_id = self.allocator.reserve(total)

        def emit(element: Element, parent_id: Optional[int], ordinal: int) -> None:
            nonlocal next_id
            element_id = next_id
            next_id += 1
            rows.append(
                (element_id, parent_id, KIND_ELEMENT, element.name, None, ordinal)
            )
            for attribute in element.attributes.values():
                rows.append(
                    (next_id, element_id, KIND_ATTRIBUTE, attribute.name,
                     attribute.value, 0)
                )
                next_id += 1
            for reference in element.references.values():
                for position, entry in enumerate(reference.entries):
                    rows.append(
                        (next_id, element_id, KIND_REF, reference.name,
                         entry.target, position)
                    )
                    next_id += 1
            for child_ordinal, child in enumerate(element.children):
                if isinstance(child, Text):
                    rows.append(
                        (next_id, element_id, KIND_TEXT, None, child.value,
                         child_ordinal)
                    )
                    next_id += 1
                else:
                    emit(child, element_id, child_ordinal)

        emit(document.root, None, 0)
        root_id = rows[0][0]
        self.db.executemany(
            "INSERT INTO edge (id, parentId, kind, name, value, ordinal) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            rows,
        )
        self.db.commit()
        return root_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def element_ids(self, name: str, child_text: Optional[tuple[str, str]] = None) -> list[int]:
        """Ids of elements with tag ``name``; optionally filtered to those
        having a child element whose text equals ``child_text[1]``."""
        if child_text is None:
            rows = self.db.query(
                "SELECT id FROM edge WHERE kind = ? AND name = ?",
                (KIND_ELEMENT, name),
            )
            return [row[0] for row in rows]
        child_name, text = child_text
        rows = self.db.query(
            "SELECT e.id FROM edge e JOIN edge c ON c.parentId = e.id "
            "JOIN edge t ON t.parentId = c.id "
            "WHERE e.kind = ? AND e.name = ? AND c.kind = ? AND c.name = ? "
            "AND t.kind = ? AND t.value = ?",
            (KIND_ELEMENT, name, KIND_ELEMENT, child_name, KIND_TEXT, text),
        )
        return [row[0] for row in rows]

    def reconstruct(self, element_id: int) -> Element:
        """Rebuild the element subtree rooted at ``element_id``.

        One recursive CTE gathers the subtree; the tree is reassembled
        client-side.
        """
        rows = self.db.query(
            "WITH RECURSIVE sub(id, parentId, kind, name, value, ordinal) AS ("
            "  SELECT id, parentId, kind, name, value, ordinal FROM edge WHERE id = ?"
            "  UNION ALL"
            "  SELECT e.id, e.parentId, e.kind, e.name, e.value, e.ordinal"
            "  FROM edge e JOIN sub s ON e.parentId = s.id"
            ") SELECT * FROM sub ORDER BY id",
            (element_id,),
        )
        by_id: dict[int, Element] = {}
        root: Optional[Element] = None
        # (parent, ordinal, tiebreak id) -> child node; attached in a
        # second pass so mixed content keeps its document order.
        children: list[tuple[int, int, int, object]] = []
        for row_id, parent_id, kind, name, value, ordinal in rows:
            if kind == KIND_ELEMENT:
                element = Element(name)
                by_id[row_id] = element
                if parent_id in by_id:
                    children.append((parent_id, ordinal, row_id, element))
                elif root is None:
                    root = element
            elif kind == KIND_ATTRIBUTE:
                by_id[parent_id].set_attribute(name, value)
            elif kind == KIND_REF:
                by_id[parent_id].add_reference(name, value)
            elif kind == KIND_TEXT:
                children.append((parent_id, ordinal, row_id, Text(value)))
        for parent_id, _ordinal, _row_id, child in sorted(
            children, key=lambda item: (item[0], item[1], item[2])
        ):
            by_id[parent_id].append_child(child)
        if root is None:
            raise LookupError(f"no element with id {element_id}")
        return root

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def delete_subtrees(self, ids: Sequence[int]) -> None:
        """Delete whole subtrees by repeated orphan sweeps (the cascading
        method; the single-table layout means one statement per level)."""
        if not ids:
            return
        placeholders = ", ".join("?" for _ in ids)
        self.db.execute(f"DELETE FROM edge WHERE id IN ({placeholders})", tuple(ids))
        while True:
            cursor = self.db.execute(
                "DELETE FROM edge WHERE parentId IS NOT NULL AND parentId NOT IN "
                "(SELECT id FROM edge)"
            )
            if not cursor.rowcount:
                return

    def copy_subtree(self, element_id: int, new_parent_id: int) -> int:
        """Copy one subtree under a new parent with fresh ids."""
        element = self.reconstruct(element_id)
        rows: list[tuple] = []
        total = _count_objects(element)
        next_id = self.allocator.reserve(total)
        first = next_id

        def emit(node: Element, parent_id: int, ordinal: int) -> None:
            nonlocal next_id
            node_id = next_id
            next_id += 1
            rows.append((node_id, parent_id, KIND_ELEMENT, node.name, None, ordinal))
            for attribute in node.attributes.values():
                rows.append(
                    (next_id, node_id, KIND_ATTRIBUTE, attribute.name,
                     attribute.value, 0)
                )
                next_id += 1
            for reference in node.references.values():
                for position, entry in enumerate(reference.entries):
                    rows.append(
                        (next_id, node_id, KIND_REF, reference.name,
                         entry.target, position)
                    )
                    next_id += 1
            for child_ordinal, child in enumerate(node.children):
                if isinstance(child, Text):
                    rows.append(
                        (next_id, node_id, KIND_TEXT, None, child.value, child_ordinal)
                    )
                    next_id += 1
                else:
                    emit(child, node_id, child_ordinal)

        emit(element, new_parent_id, 0)
        self.db.executemany(
            "INSERT INTO edge (id, parentId, kind, name, value, ordinal) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            rows,
        )
        return first

    def count(self) -> int:
        return self.db.query_one("SELECT COUNT(*) FROM edge")[0]


def _count_objects(element: Element) -> int:
    total = 1 + len(element.attributes)
    for reference in element.references.values():
        total += len(reference.entries)
    for child in element.children:
        if isinstance(child, Text):
            total += 1
        else:
            total += _count_objects(child)
    return total
