"""System-wide tuple-id allocation.

Shredded tuples carry document-unique integer ids (the element
ID/parentId linkage of Section 5.1).  A single ``next available id``
counter is kept in a one-row metadata table, as the paper's table-based
insert assumes: its offset-remapping heuristic reserves
``maxId - minId + 1`` ids by advancing this counter once (Section 6.2.2).
"""

from __future__ import annotations

import threading

from repro.relational.database import Database

META_TABLE = "repro_meta"


class IdAllocator:
    """Allocates tuple ids backed by a metadata table.

    ``reserve(count)`` performs the read-modify-write against the
    database (two statements, as a real implementation would issue);
    ``next_batch`` is a loading-time convenience on top of it.  The
    read-modify-write is guarded by a lock so concurrent service
    writers never hand out overlapping id ranges.
    """

    def __init__(self, db: Database) -> None:
        self._db = db
        self._lock = threading.Lock()
        self._db.execute(
            f"CREATE TABLE IF NOT EXISTS {META_TABLE} (key TEXT PRIMARY KEY, value INTEGER)"
        )
        self._db.execute(
            f"INSERT OR IGNORE INTO {META_TABLE} (key, value) VALUES ('next_id', 1)"
        )

    def peek(self) -> int:
        row = self._db.query_one(f"SELECT value FROM {META_TABLE} WHERE key = 'next_id'")
        assert row is not None
        return int(row[0])

    def reserve(self, count: int) -> int:
        """Reserve ``count`` consecutive ids; returns the first one."""
        if count < 0:
            raise ValueError("cannot reserve a negative id range")
        with self._lock:
            first = self.peek()
            self._db.execute(
                f"UPDATE {META_TABLE} SET value = value + ? WHERE key = 'next_id'",
                (count,),
            )
        return first

    def next_batch(self, count: int) -> range:
        first = self.reserve(count)
        return range(first, first + count)
