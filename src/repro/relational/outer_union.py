"""Sorted Outer Union result construction (Section 5.2, Figure 5).

To return an XML subtree stored across multiple relations in one tuple
stream, each relation in the subtree contributes a ``WITH`` CTE that
pads the "wide" tuple with NULLs; the branches are ``UNION ALL``-ed and
sorted so child tuples follow their parents (child tuples carry their
ancestors' key columns but not their data).  The client-side *tagger*
(:func:`reconstruct_elements`) reassembles model elements from the
sorted stream, rebuilding inlined structure (``Address_City`` back into
``<Address><City>...</City></Address>``) along the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import StorageError
from repro.relational.schema import (
    FIELD_ATTRIBUTE,
    FIELD_PCDATA,
    FIELD_PRESENCE,
    FIELD_REFS,
    MappingSchema,
    Relation,
)
from repro.xmlmodel.model import Element, Text


@dataclass
class LayoutEntry:
    """Where one relation's columns live inside the wide tuple."""

    relation: str
    parent_relation: Optional[str]
    id_index: int
    data_indices: list[int]


@dataclass
class OuterUnionQuery:
    """A generated Sorted Outer Union query plus its wide-tuple layout."""

    sql: str
    params: tuple
    layout: list[LayoutEntry]
    width: int

    def entry_for_row(self, row: Sequence) -> LayoutEntry:
        """The layout entry a wide tuple belongs to: deepest non-NULL id."""
        owner: Optional[LayoutEntry] = None
        for entry in self.layout:
            if row[entry.id_index] is not None:
                owner = entry
        if owner is None:
            raise StorageError(f"wide tuple with no id columns set: {row!r}")
        return owner


def subtree_relations(schema: MappingSchema, target: str) -> list[Relation]:
    """The target relation and everything below it, in DFS pre-order."""
    ordered: list[Relation] = []
    on_path: set[str] = set()

    def visit(name: str) -> None:
        if name in on_path:
            raise StorageError(
                "the Sorted Outer Union cannot cover a recursive mapping "
                f"(relation {name!r} nests itself); query a bounded subtree"
            )
        relation = schema.relation(name)
        ordered.append(relation)
        on_path.add(name)
        for child in relation.children:
            visit(child)
        on_path.remove(name)

    visit(target)
    return ordered


def build_outer_union(
    schema: MappingSchema,
    target: str,
    where_sql: str = "",
    params: Sequence = (),
) -> OuterUnionQuery:
    """Generate the Figure-5-style query for the subtree rooted at
    ``target``.  ``where_sql`` filters the base (target) relation only —
    as the paper notes, conditions must sit in the first subquery since
    the other branches cannot remove tuples."""
    relations = subtree_relations(schema, target)
    layout: list[LayoutEntry] = []
    cursor = 0
    for relation in relations:
        entry = LayoutEntry(
            relation=relation.name,
            parent_relation=relation.parent if relation.name != target else None,
            id_index=cursor,
            data_indices=list(range(cursor + 1, cursor + 1 + len(relation.fields))),
        )
        layout.append(entry)
        cursor += 1 + len(relation.fields)
    width = cursor
    wide_columns = [f"c{i}" for i in range(width)]
    entry_by_name = {entry.relation: entry for entry in layout}

    ctes: list[str] = []
    for position, relation in enumerate(relations):
        entry = entry_by_name[relation.name]
        select_parts = ["NULL"] * width
        alias = "r"
        if position == 0:
            # The base subquery carries the selection, so its columns are
            # qualified by the bare table name — the same form a DELETE's
            # WHERE clause uses, letting callers share translated predicates.
            qualifier = f'"{relation.name}"'
            select_parts[entry.id_index] = f"{qualifier}.id"
            for inlined, index in zip(relation.fields, entry.data_indices):
                select_parts[index] = f'{qualifier}."{inlined.column}"'
            where = f" WHERE {where_sql}" if where_sql else ""
            body = (
                f"SELECT {', '.join(select_parts)} "
                f'FROM "{relation.name}"{where}'
            )
        else:
            parent_entry = entry_by_name[relation.parent]  # type: ignore[index]
            parent_cte = f"q{relations.index(schema.relation(relation.parent))}"
            # Child tuples carry every ancestor id (the key attributes),
            # but no ancestor data.
            ancestor = entry_by_name[relation.parent]  # type: ignore[index]
            chain: list[LayoutEntry] = []
            walk: Optional[LayoutEntry] = ancestor
            while walk is not None:
                chain.append(walk)
                walk = entry_by_name.get(walk.parent_relation) if walk.parent_relation else None
            for ancestor_entry in chain:
                column = wide_columns[ancestor_entry.id_index]
                select_parts[ancestor_entry.id_index] = f"base.{column}"
            select_parts[entry.id_index] = f"{alias}.id"
            for inlined, index in zip(relation.fields, entry.data_indices):
                select_parts[index] = f'{alias}."{inlined.column}"'
            body = (
                f"SELECT {', '.join(select_parts)} "
                f'FROM {parent_cte} base, "{relation.name}" {alias} '
                f"WHERE {alias}.parentId = base.{wide_columns[parent_entry.id_index]}"
            )
        ctes.append(f"q{position}({', '.join(wide_columns)}) AS ({body})")

    union = " UNION ALL ".join(f"SELECT * FROM q{i}" for i in range(len(relations)))
    order_columns = ", ".join(wide_columns[entry.id_index] for entry in layout)
    sql = f"WITH {', '.join(ctes)} {union} ORDER BY {order_columns}"
    return OuterUnionQuery(sql=sql, params=tuple(params), layout=layout, width=width)


# ----------------------------------------------------------------------
# The tagger: sorted wide tuples -> model elements
# ----------------------------------------------------------------------
def reconstruct_elements(
    schema: MappingSchema,
    query: OuterUnionQuery,
    rows: Sequence[Sequence],
    positions: Optional[dict[int, int]] = None,
    positions_global: bool = False,
) -> list[Element]:
    """Rebuild the XML elements of the target relation from a sorted
    Outer Union result.  Returns the top-level elements in stream order.

    ``positions`` optionally maps tuple ids to document-order positions
    (from an order-preserving store): relation-anchored siblings are
    then re-ordered accordingly (inlined content keeps its
    mapping-determined place).  ``positions_global`` marks maps that
    order the whole document (interval ``pre`` ordinals, not per-parent
    sibling positions): the top-level results are then sorted too."""
    entry_by_name = {entry.relation: entry for entry in query.layout}
    built: dict[tuple[str, int], Element] = {}  # (relation, tuple id) -> element
    roots: list[Element] = []
    root_ids: dict[int, int] = {}  # element node_id -> tuple id
    # anchor element id -> [(child element, tuple id)] for optional reorder.
    attachments: dict[int, list[tuple[Element, int]]] = {}
    anchors: dict[int, Element] = {}
    for row in rows:
        entry = query.entry_for_row(row)
        relation = schema.relation(entry.relation)
        element = _build_element(relation, row, entry)
        tuple_id = row[entry.id_index]
        built[(relation.name, tuple_id)] = element
        if entry.parent_relation is None:
            roots.append(element)
            root_ids[element.node_id] = tuple_id
        else:
            parent_entry = entry_by_name[entry.parent_relation]
            parent_id = row[parent_entry.id_index]
            parent_element = built.get((entry.parent_relation, parent_id))
            if parent_element is None:
                raise StorageError(
                    "outer union stream is not sorted: child tuple arrived "
                    f"before its parent ({relation.name} id={tuple_id})"
                )
            anchor = _ensure_path(parent_element, relation.parent_path)
            anchor.append_child(element)
            if positions is not None:
                anchors[anchor.node_id] = anchor
                attachments.setdefault(anchor.node_id, []).append((element, tuple_id))
    if positions is not None:
        _reorder_attachments(anchors, attachments, positions)
        if positions_global:
            # The top-level results follow document order too (tuple
            # stream order is id order, which positional inserts break).
            roots.sort(key=lambda el: positions.get(root_ids[el.node_id], 1 << 60))
    return roots


def _reorder_attachments(
    anchors: dict[int, Element],
    attachments: dict[int, list[tuple[Element, int]]],
    positions: dict[int, int],
) -> None:
    """Re-sort relation-anchored siblings by their stored positions."""
    for anchor_id, attached in attachments.items():
        if len(attached) < 2:
            continue
        anchor = anchors[anchor_id]
        by_element_id = {element.node_id: tuple_id for element, tuple_id in attached}
        attached_elements = [element for element, _ in attached]
        desired = sorted(
            attached_elements,
            key=lambda el: positions.get(by_element_id[el.node_id], 1 << 60),
        )
        iterator = iter(desired)
        for index, child in enumerate(anchor.children):
            if isinstance(child, Element) and child.node_id in by_element_id:
                anchor.children[index] = next(iterator)


def _build_element(relation: Relation, row: Sequence, entry: LayoutEntry) -> Element:
    element = Element(relation.tag)
    for inlined, index in zip(relation.fields, entry.data_indices):
        value = row[index]
        if value is None:
            continue
        if inlined.kind == FIELD_PRESENCE:
            _ensure_path(element, inlined.path)
        elif inlined.kind == FIELD_PCDATA:
            target = _ensure_path(element, inlined.path)
            if str(value):
                target.append_child(Text(str(value)))
        elif inlined.kind == FIELD_ATTRIBUTE:
            target = _ensure_path(element, inlined.path)
            target.set_attribute(inlined.name, str(value))
        elif inlined.kind == FIELD_REFS:
            target = _ensure_path(element, inlined.path)
            for ref_target in str(value).split():
                target.add_reference(inlined.name, ref_target)
    return element


def _ensure_path(element: Element, path: tuple[str, ...]) -> Element:
    """Find-or-create the inlined descendant chain ``path``."""
    current = element
    for tag in path:
        child = current.first_child_element(tag)
        if child is None:
            child = Element(tag)
            current.append_child(child)
        current = child
    return current
