"""An order-preserving :class:`XmlStore` (completing the §8 sketch).

``OrderedXmlStore`` wires the position bookkeeping of
:mod:`repro.relational.ordered` into the store's whole lifecycle:

* loading indexes every tuple's document-order position;
* element-level positional inserts (``INSERT <x/> BEFORE $y``) are
  honoured when both the content and the anchor are relation-anchored:
  the new tuple is spliced at the anchor's position (the §8 "push")
  instead of degrading to an append;
* plain inserts get append positions; strategy deletes sweep their
  order rows;
* queries reconstruct relation-anchored siblings in document order.

Inlined elements keep mapping-determined positions — the DTD pins them
to at most one occurrence, so the content model fixes where they belong.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import TranslationError
from repro.relational.ordered import GapPolicy, OrderPolicy, OrderedStore
from repro.relational.plan_cache import contains_rename
from repro.relational.shredder import shred_element
from repro.relational.store import XmlStore
from repro.relational.update_translate import TupleBinding, UpdateTranslator
from repro.updates.operations import InsertBefore
from repro.xmlmodel.model import Document, Element
from repro.xquery.ast import Query


class _OrderedTranslator(UpdateTranslator):
    """UpdateTranslator that keeps the position table in sync."""

    def __init__(self, ordered: OrderedStore, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._ordered = ordered

    def _execute_positional(self, env, target, operation) -> None:
        anchor = self._operand_binding(env, operation.anchor)
        content = operation.content
        if isinstance(anchor, TupleBinding) and isinstance(content, Element):
            self._positional_tuple_insert(anchor, content, operation)
            return
        # IDREFS anchors (order inside one column) and other cases are
        # handled by the base translator.
        super()._execute_positional(env, target, operation)

    def _positional_tuple_insert(self, anchor, content, operation) -> None:
        """Insert ``content`` as a sibling tuple of the anchor, splicing
        it at the anchor's document-order position."""
        anchor_rows = self._selection_rows(anchor.selection)
        if not anchor_rows:
            return
        before = isinstance(operation, InsertBefore)
        anchor_relation = self.schema.relation(anchor.selection.relation)
        if anchor_relation.parent is None:
            raise TranslationError("cannot insert siblings of the document root")
        parent_relation = self.schema.relation(anchor_relation.parent)
        content_relation = None
        for child_name in parent_relation.children:
            child = self.schema.relation(child_name)
            if child.tag == content.name:
                content_relation = child
                break
        if content_relation is None:
            raise TranslationError(
                f"element <{content.name}> cannot be stored as a sibling of "
                f"{anchor_relation.name!r} tuples"
            )
        for anchor_id, parent_id in anchor_rows:
            new_id = shred_element(
                self.db, self.schema, content_relation, content,
                parent_id, self.allocator,
            )
            siblings = self._ordered.ordered_child_ids(parent_id)
            index = siblings.index(anchor_id)
            if not before:
                index += 1
            self._ordered.register_insert(new_id, parent_id, index)


class OrderedXmlStore(XmlStore):
    """XmlStore plus document-order preservation for element children."""

    def __init__(self, *args, order_policy: Optional[OrderPolicy] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.order = OrderedStore(self, policy=order_policy or GapPolicy())

    @classmethod
    def from_dtd(
        cls,
        dtd,
        root=None,
        db=None,
        document_name: str = "doc.xml",
        strict_order: bool = False,
        order_policy: Optional[OrderPolicy] = None,
    ) -> "OrderedXmlStore":
        from repro.relational.inlining import derive_inlining_schema
        from repro.xmlmodel.dtd import parse_dtd
        from repro.xmlmodel.policy import RefPolicy

        parsed = parse_dtd(dtd) if isinstance(dtd, str) else dtd
        schema = derive_inlining_schema(parsed, root=root)
        return cls(
            schema,
            db=db,
            document_name=document_name,
            policy=RefPolicy.from_dtd(parsed),
            strict_order=strict_order,
            order_policy=order_policy,
        )

    # ------------------------------------------------------------------
    def load(self, document: Document) -> int:
        root_id = super().load(document)
        self.order.index_existing()
        return root_id

    def execute(self, statement: Union[str, Query]) -> Optional[list[Element]]:
        query = self.parse(statement) if isinstance(statement, str) else statement
        if not query.is_update:
            return self.query(query)
        translator = _OrderedTranslator(
            self.order,
            self.db,
            self.schema,
            self.allocator,
            self._delete_method,
            self._insert_method,
            strict_order=self.strict_order,
            document_name=self.document_name,
        )
        try:
            translator.execute_update(query)
        except Exception:
            self.db.rollback()
            raise
        self.warnings.extend(translator.warnings)
        if contains_rename(query):
            self.plan_cache.bump_generation()
        self._assign_append_positions()
        self.order.sweep_deleted()
        return None

    def _assign_append_positions(self) -> None:
        """Give append positions to tuples inserted without explicit
        position (plain INSERTs and strategy copies)."""
        for relation in self.schema.iter_top_down():
            if relation.parent is None:
                continue
            rows = self.db.query(
                f'SELECT id, parentId FROM "{relation.name}" WHERE id NOT IN '
                "(SELECT id FROM doc_order)"
            )
            for tuple_id, parent_id in sorted(rows):
                self.order.register_append(tuple_id, parent_id)

    def _order_positions(self) -> dict[int, int]:
        return dict(self.db.query("SELECT id, pos FROM doc_order"))
