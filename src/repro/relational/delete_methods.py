"""The paper's four delete strategies (Section 6.1).

Each strategy removes the subtrees of ``relation`` whose root tuples
satisfy ``where_sql``:

* :class:`PerTupleTriggerDelete` — one client DELETE; real SQLite
  ``FOR EACH ROW`` triggers cascade through child relations by looking
  up each dead tuple's id (per-id index lookups — work proportional to
  the deleted data, not the document);
* :class:`PerStatementTriggerDelete` — one client DELETE; emulated
  DB2-style statement triggers sweep each child relation for orphans
  (``parentId NOT IN (SELECT id FROM parent)``, a scan whose cost grows
  with the document);
* :class:`CascadingDelete` — the same orphan sweeps issued as *client*
  statements, stopping as soon as a sweep removes nothing (Section
  6.1.2: simulates per-statement triggers at the application level);
* :class:`AsrDelete` — marks ASR paths through the doomed subtree
  roots, deletes each descendant relation's tuples by joining the
  marked paths, then repairs the ASR (Section 6.1.3).

``install``/``uninstall`` switch the strategy's machinery on and off;
only one strategy's machinery may be active at a time (the
:class:`~repro.relational.store.XmlStore` facade enforces this).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import StorageError
from repro.obs import get_registry
from repro.relational.asr import AsrManager
from repro.relational.database import Database
from repro.relational.interval import (
    MAX_RANGES_PER_DELETE,
    INTERVAL_TABLE,
    SURVIVOR_TRUNCATE_LIMIT,
    IntervalIndex,
    range_predicate,
)
from repro.relational.schema import MappingSchema
from repro.relational import triggers


class DeleteMethod:
    """Base interface; subclasses implement one strategy."""

    name = "abstract"

    def install(self, db: Database, schema: MappingSchema) -> None:
        """Set up triggers/ASRs needed by this strategy."""

    def uninstall(self, db: Database, schema: MappingSchema) -> None:
        """Tear the machinery down again."""

    def delete(
        self,
        db: Database,
        schema: MappingSchema,
        relation: str,
        where_sql: str,
        params: Sequence = (),
    ) -> None:
        raise NotImplementedError


class PerTupleTriggerDelete(DeleteMethod):
    name = "per_tuple_trigger"

    def install(self, db: Database, schema: MappingSchema) -> None:
        triggers.install_per_tuple_triggers(db, schema)

    def uninstall(self, db: Database, schema: MappingSchema) -> None:
        triggers.remove_per_tuple_triggers(db, schema)

    def delete(self, db, schema, relation, where_sql, params=()) -> None:
        where = f" WHERE {where_sql}" if where_sql else ""
        db.execute(f'DELETE FROM "{relation}"{where}', params)


class PerStatementTriggerDelete(DeleteMethod):
    name = "per_statement_trigger"

    def install(self, db: Database, schema: MappingSchema) -> None:
        triggers.install_per_statement_triggers(db, schema)

    def uninstall(self, db: Database, schema: MappingSchema) -> None:
        triggers.remove_per_statement_triggers(db)

    def delete(self, db, schema, relation, where_sql, params=()) -> None:
        where = f" WHERE {where_sql}" if where_sql else ""
        db.execute(f'DELETE FROM "{relation}"{where}', params)


class CascadingDelete(DeleteMethod):
    """Per-statement trigger semantics driven from the application."""

    name = "cascade"

    def delete(self, db, schema, relation, where_sql, params=()) -> None:
        where = f" WHERE {where_sql}" if where_sql else ""
        db.execute(f'DELETE FROM "{relation}"{where}', params)
        # Sweep orphans level by level, stopping a branch as soon as a
        # sweep removes no tuples (works even for recursive schemas, where
        # a child has several possible parent relations to survive under).
        frontier = list(schema.relation(relation).children)
        while frontier:
            child = frontier.pop(0)
            survivors = " UNION ALL ".join(
                f'SELECT id FROM "{parent}"'
                for parent in schema.parent_relations_of(child)
            )
            cursor = db.execute(
                f'DELETE FROM "{child}" WHERE parentId NOT IN ({survivors})'
            )
            if cursor.rowcount:
                frontier.extend(schema.relation(child).children)


class AsrDelete(DeleteMethod):
    """Delete through the Access Support Relations."""

    name = "asr"

    def __init__(self, asr: Optional[AsrManager] = None) -> None:
        self.asr = asr

    def install(self, db: Database, schema: MappingSchema) -> None:
        if self.asr is None:
            self.asr = AsrManager(db, schema)
        self.asr.create_all()

    def uninstall(self, db: Database, schema: MappingSchema) -> None:
        if self.asr is not None:
            self.asr.drop_all()

    def delete(self, db, schema, relation, where_sql, params=()) -> None:
        if self.asr is None:
            raise StorageError("AsrDelete used before install()")
        where = f" WHERE {where_sql}" if where_sql else ""
        id_select = f'SELECT id FROM "{relation}"{where}'
        # 1. Mark every ASR path through a doomed subtree root.
        self.asr.mark_subtrees(relation, id_select, params)
        # 2. Keep the ASR left-complete for parents losing all children.
        self.asr.repair_left_completeness(relation)
        # 3. Delete descendants per child table via the marked paths.
        for descendant in _descendant_relations(schema, relation):
            marked_sql = self.asr.marked_descendant_ids_sql(relation, descendant)
            if marked_sql is not None:
                db.execute(f'DELETE FROM "{descendant}" WHERE id IN ({marked_sql})')
        # 4. Delete the subtree roots via the marked ids — NOT by
        #    re-evaluating the predicate, which may no longer hold once
        #    the descendants it referenced are gone.
        root_marked_sql = self.asr.marked_descendant_ids_sql(relation, relation)
        if root_marked_sql is not None:
            db.execute(f'DELETE FROM "{relation}" WHERE id IN ({root_marked_sql})')
        # 5. Remove the marked paths from the ASR.
        self.asr.delete_marked()


class IntervalRangeDelete(DeleteMethod):
    """Subtree delete as pre/post range predicates (interval encoding).

    The doomed subtree roots' (pre, post) ranges are looked up once in
    the ``node_interval`` side table; each relation of the mapping (and
    the index itself) is then cleared with range deletes — a constant
    number of statements per schema, independent of subtree size,
    fan-out, and document size.
    """

    name = "interval"

    def __init__(self, index: Optional[IntervalIndex] = None) -> None:
        self.index = index

    def install(self, db: Database, schema: MappingSchema) -> None:
        if self.index is None or self.index.db is not db:
            self.index = IntervalIndex(db, schema)
        self.index.ensure_populated()

    def uninstall(self, db: Database, schema: MappingSchema) -> None:
        # The index is data, not machinery: it stays valid (and shared
        # with the insert strategy / the interval store) across switches.
        pass

    def delete(self, db, schema, relation, where_sql, params=()) -> None:
        if self.index is None:
            raise StorageError("IntervalRangeDelete used before install()")
        targets = [relation] + _descendant_relations(schema, relation)
        if not where_sql and self._delete_all(db, schema, targets):
            return
        where = f" WHERE {where_sql}" if where_sql else ""
        ranges = self.index.ranges_for(
            f'SELECT id FROM "{relation}"{where}', params
        )
        if not ranges:
            return
        get_registry().counter("interval.range_deletes").inc()
        for start in range(0, len(ranges), MAX_RANGES_PER_DELETE):
            chunk = ranges[start:start + MAX_RANGES_PER_DELETE]
            predicate, chunk_params = range_predicate(chunk)
            for name in targets:
                # A relation's tuples sit at one fixed tree depth, so the
                # level filter shrinks each per-relation id set to exactly
                # the rows that relation holds.
                db.execute(
                    f'DELETE FROM "{name}" WHERE id IN '
                    f"(SELECT id FROM {INTERVAL_TABLE} "
                    f"WHERE ({predicate}) AND level = ?)",
                    list(chunk_params) + [_relation_level(schema, name)],
                )
            db.execute(
                f"DELETE FROM {INTERVAL_TABLE} WHERE {predicate}", chunk_params
            )

    def _delete_all(
        self, db: Database, schema: MappingSchema, targets: list[str]
    ) -> bool:
        """Whole-relation bulk delete: with no selection, every row of
        every target relation dies (each relation has exactly one parent
        relation), so no range lookup is needed — plain DELETEs take
        SQLite's truncate path.  The index survivors are exactly the
        rows of the *non*-target relations (usually just the ancestors),
        so when they are few they are copied out around a truncation of
        the index; otherwise fall back to the ranged path."""
        others = [name for name in schema.relations if name not in targets]
        union = " UNION ALL ".join(f'SELECT id FROM "{name}"' for name in others)
        survivor_count = (
            db.query_one(f"SELECT COUNT(*) FROM ({union})")[0] if others else 0
        )
        if survivor_count > SURVIVOR_TRUNCATE_LIMIT:
            return False
        get_registry().counter("interval.range_deletes").inc()
        survivors = (
            db.query(
                f"SELECT id, pre, post, level FROM {INTERVAL_TABLE} "
                f"WHERE id IN ({union})"
            )
            if others
            else []
        )
        for name in targets:
            db.execute(f'DELETE FROM "{name}"')
        db.execute(f"DELETE FROM {INTERVAL_TABLE}")
        if survivors:
            db.executemany(
                f"INSERT INTO {INTERVAL_TABLE} (id, pre, post, level) "
                "VALUES (?, ?, ?, ?)",
                survivors,
            )
        return True


def _relation_level(schema: MappingSchema, name: str) -> int:
    """Tree depth of a relation's tuples (root relation = 0): the
    inlining schema nests relations exactly like their tuples."""
    level = 0
    current = schema.relation(name)
    while current.parent is not None:
        level += 1
        current = schema.relation(current.parent)
    return level


def _descendant_relations(schema: MappingSchema, relation: str) -> list[str]:
    ordered: list[str] = []
    queue = list(schema.relation(relation).children)
    while queue:
        name = queue.pop(0)
        if name in ordered:
            continue
        ordered.append(name)
        queue.extend(schema.relation(name).children)
    return ordered


# Strategy classes by name; instantiate one per store (AsrDelete holds
# per-database state).
DELETE_METHODS = {
    method.name: method
    for method in (
        PerTupleTriggerDelete,
        PerStatementTriggerDelete,
        CascadingDelete,
        AsrDelete,
        IntervalRangeDelete,
    )
}
