"""The paper's four delete strategies (Section 6.1).

Each strategy removes the subtrees of ``relation`` whose root tuples
satisfy ``where_sql``:

* :class:`PerTupleTriggerDelete` — one client DELETE; real SQLite
  ``FOR EACH ROW`` triggers cascade through child relations by looking
  up each dead tuple's id (per-id index lookups — work proportional to
  the deleted data, not the document);
* :class:`PerStatementTriggerDelete` — one client DELETE; emulated
  DB2-style statement triggers sweep each child relation for orphans
  (``parentId NOT IN (SELECT id FROM parent)``, a scan whose cost grows
  with the document);
* :class:`CascadingDelete` — the same orphan sweeps issued as *client*
  statements, stopping as soon as a sweep removes nothing (Section
  6.1.2: simulates per-statement triggers at the application level);
* :class:`AsrDelete` — marks ASR paths through the doomed subtree
  roots, deletes each descendant relation's tuples by joining the
  marked paths, then repairs the ASR (Section 6.1.3).

``install``/``uninstall`` switch the strategy's machinery on and off;
only one strategy's machinery may be active at a time (the
:class:`~repro.relational.store.XmlStore` facade enforces this).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import StorageError
from repro.relational.asr import AsrManager
from repro.relational.database import Database
from repro.relational.schema import MappingSchema
from repro.relational import triggers


class DeleteMethod:
    """Base interface; subclasses implement one strategy."""

    name = "abstract"

    def install(self, db: Database, schema: MappingSchema) -> None:
        """Set up triggers/ASRs needed by this strategy."""

    def uninstall(self, db: Database, schema: MappingSchema) -> None:
        """Tear the machinery down again."""

    def delete(
        self,
        db: Database,
        schema: MappingSchema,
        relation: str,
        where_sql: str,
        params: Sequence = (),
    ) -> None:
        raise NotImplementedError


class PerTupleTriggerDelete(DeleteMethod):
    name = "per_tuple_trigger"

    def install(self, db: Database, schema: MappingSchema) -> None:
        triggers.install_per_tuple_triggers(db, schema)

    def uninstall(self, db: Database, schema: MappingSchema) -> None:
        triggers.remove_per_tuple_triggers(db, schema)

    def delete(self, db, schema, relation, where_sql, params=()) -> None:
        where = f" WHERE {where_sql}" if where_sql else ""
        db.execute(f'DELETE FROM "{relation}"{where}', params)


class PerStatementTriggerDelete(DeleteMethod):
    name = "per_statement_trigger"

    def install(self, db: Database, schema: MappingSchema) -> None:
        triggers.install_per_statement_triggers(db, schema)

    def uninstall(self, db: Database, schema: MappingSchema) -> None:
        triggers.remove_per_statement_triggers(db)

    def delete(self, db, schema, relation, where_sql, params=()) -> None:
        where = f" WHERE {where_sql}" if where_sql else ""
        db.execute(f'DELETE FROM "{relation}"{where}', params)


class CascadingDelete(DeleteMethod):
    """Per-statement trigger semantics driven from the application."""

    name = "cascade"

    def delete(self, db, schema, relation, where_sql, params=()) -> None:
        where = f" WHERE {where_sql}" if where_sql else ""
        db.execute(f'DELETE FROM "{relation}"{where}', params)
        # Sweep orphans level by level, stopping a branch as soon as a
        # sweep removes no tuples (works even for recursive schemas, where
        # a child has several possible parent relations to survive under).
        frontier = list(schema.relation(relation).children)
        while frontier:
            child = frontier.pop(0)
            survivors = " UNION ALL ".join(
                f'SELECT id FROM "{parent}"'
                for parent in schema.parent_relations_of(child)
            )
            cursor = db.execute(
                f'DELETE FROM "{child}" WHERE parentId NOT IN ({survivors})'
            )
            if cursor.rowcount:
                frontier.extend(schema.relation(child).children)


class AsrDelete(DeleteMethod):
    """Delete through the Access Support Relations."""

    name = "asr"

    def __init__(self, asr: Optional[AsrManager] = None) -> None:
        self.asr = asr

    def install(self, db: Database, schema: MappingSchema) -> None:
        if self.asr is None:
            self.asr = AsrManager(db, schema)
        self.asr.create_all()

    def uninstall(self, db: Database, schema: MappingSchema) -> None:
        if self.asr is not None:
            self.asr.drop_all()

    def delete(self, db, schema, relation, where_sql, params=()) -> None:
        if self.asr is None:
            raise StorageError("AsrDelete used before install()")
        where = f" WHERE {where_sql}" if where_sql else ""
        id_select = f'SELECT id FROM "{relation}"{where}'
        # 1. Mark every ASR path through a doomed subtree root.
        self.asr.mark_subtrees(relation, id_select, params)
        # 2. Keep the ASR left-complete for parents losing all children.
        self.asr.repair_left_completeness(relation)
        # 3. Delete descendants per child table via the marked paths.
        for descendant in _descendant_relations(schema, relation):
            marked_sql = self.asr.marked_descendant_ids_sql(relation, descendant)
            if marked_sql is not None:
                db.execute(f'DELETE FROM "{descendant}" WHERE id IN ({marked_sql})')
        # 4. Delete the subtree roots via the marked ids — NOT by
        #    re-evaluating the predicate, which may no longer hold once
        #    the descendants it referenced are gone.
        root_marked_sql = self.asr.marked_descendant_ids_sql(relation, relation)
        if root_marked_sql is not None:
            db.execute(f'DELETE FROM "{relation}" WHERE id IN ({root_marked_sql})')
        # 5. Remove the marked paths from the ASR.
        self.asr.delete_marked()


def _descendant_relations(schema: MappingSchema, relation: str) -> list[str]:
    ordered: list[str] = []
    queue = list(schema.relation(relation).children)
    while queue:
        name = queue.pop(0)
        if name in ordered:
            continue
        ordered.append(name)
        queue.extend(schema.relation(name).children)
    return ordered


# Strategy classes by name; instantiate one per store (AsrDelete holds
# per-database state).
DELETE_METHODS = {
    method.name: method
    for method in (
        PerTupleTriggerDelete,
        PerStatementTriggerDelete,
        CascadingDelete,
        AsrDelete,
    )
}
