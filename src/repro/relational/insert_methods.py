"""The paper's three complex-insert strategies (Section 6.2).

All three copy the subtrees of ``relation`` whose root tuples satisfy
``where_sql`` so that the copies become children of the tuple
``new_parent_id`` (copy semantics: fresh ids, same connectivity):

* :class:`TupleInsert` — reads the source through a Sorted Outer Union
  query a tuple at a time, remaps each element's id through an
  in-memory mapping (ids are allocated **without gaps**), and issues one
  INSERT per source element — cheap setup, statement count proportional
  to the copied data (Section 6.2.1);
* :class:`TableInsert` — materialises the source rows in temp tables,
  computes the min/max id over them, reserves ``maxId - minId + 1`` ids
  by advancing the system-wide counter once, and re-inserts each
  relation en masse with ``id + offset`` — a constant number of
  statements per relation (Section 6.2.2);
* :class:`AsrInsert` — uses marked ASR paths instead of temp tables to
  find the source tuples, then the same offset remap directly from the
  data relations, plus ASR maintenance statements (Section 6.2.3).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import StorageError
from repro.relational.asr import AsrManager
from repro.relational.database import Database
from repro.relational.idgen import IdAllocator, META_TABLE
from repro.relational.interval import IntervalIndex
from repro.relational.outer_union import build_outer_union, subtree_relations
from repro.relational.schema import MappingSchema


class InsertMethod:
    """Base interface for the copy-insert strategies."""

    name = "abstract"

    def install(self, db: Database, schema: MappingSchema) -> None:
        """Set up any machinery the strategy needs (ASRs)."""

    def uninstall(self, db: Database, schema: MappingSchema) -> None:
        """Tear the machinery down again."""

    def insert_copy(
        self,
        db: Database,
        schema: MappingSchema,
        allocator: IdAllocator,
        relation: str,
        where_sql: str,
        params: Sequence,
        new_parent_id: int,
    ) -> None:
        raise NotImplementedError


class TupleInsert(InsertMethod):
    name = "tuple"

    def insert_copy(self, db, schema, allocator, relation, where_sql, params, new_parent_id):
        query = build_outer_union(schema, relation, where_sql, params)
        rows = db.query(query.sql, query.params)
        id_map: dict[int, int] = {}
        next_id = allocator.peek()
        first_id = next_id
        entry_by_name = {entry.relation: entry for entry in query.layout}
        for row in rows:
            entry = query.entry_for_row(row)
            rel = schema.relation(entry.relation)
            old_id = row[entry.id_index]
            new_id = next_id
            next_id += 1
            id_map[old_id] = new_id
            if entry.parent_relation is None:
                parent_id = new_parent_id
            else:
                parent_entry = entry_by_name[entry.parent_relation]
                parent_id = id_map[row[parent_entry.id_index]]
            values = [new_id, parent_id] + [row[i] for i in entry.data_indices]
            columns = ", ".join(f'"{c}"' for c in rel.all_columns)
            placeholders = ", ".join("?" for _ in values)
            db.execute(
                f'INSERT INTO "{rel.name}" ({columns}) VALUES ({placeholders})',
                values,
            )
        # Persist the gap-free allocation with a single counter update.
        if next_id != first_id:
            db.execute(
                f"UPDATE {META_TABLE} SET value = ? WHERE key = 'next_id'",
                (next_id,),
            )


class TableInsert(InsertMethod):
    name = "table"

    def insert_copy(self, db, schema, allocator, relation, where_sql, params, new_parent_id):
        """Returns the id offset applied to the copied tuples (None when
        nothing matched) so interval-aware subclasses can shift-index
        the copies."""
        try:
            relations = subtree_relations(schema, relation)
        except StorageError:
            # Recursive mapping: the subtree nests its own relation.  A
            # fix-point (recursive CTE) gathers the tuples instead of one
            # temp table per static level (cf. the fix-point remark in §5.2).
            return self._insert_copy_recursive(
                db, schema, allocator, relation, where_sql, params, new_parent_id
            )
        temp_names = {rel.name: f"tmp_copy_{rel.name}" for rel in relations}
        # 1. Materialise the source subtree into temp tables, top-down.
        where = f" WHERE {where_sql}" if where_sql else ""
        db.execute(
            f'CREATE TEMP TABLE "{temp_names[relation]}" AS '
            f'SELECT * FROM "{relation}"{where}',
            params,
        )
        for rel in relations[1:]:
            parent_temp = temp_names[rel.parent]
            db.execute(
                f'CREATE TEMP TABLE "{temp_names[rel.name]}" AS '
                f'SELECT c.* FROM "{rel.name}" c JOIN "{parent_temp}" p '
                f"ON c.parentId = p.id"
            )
        try:
            # 2. min/max over all source tuples -> offset heuristic.
            union = " UNION ALL ".join(
                f'SELECT id FROM "{temp_names[rel.name]}"' for rel in relations
            )
            row = db.query_one(f"SELECT MIN(id), MAX(id) FROM ({union})")
            min_id, max_id = row if row else (None, None)
            if min_id is None:
                return None  # nothing matched
            first_new = allocator.reserve(max_id - min_id + 1)
            offset = first_new - min_id
            # 3. En-masse re-insert per relation with remapped ids.
            for rel in relations:
                data_cols = ", ".join(f'"{c}"' for c in rel.data_columns)
                data_part = f", {data_cols}" if rel.data_columns else ""
                if rel.name == relation:
                    parent_expr = str(new_parent_id)
                else:
                    parent_expr = f"parentId + {offset}"
                db.execute(
                    f'INSERT INTO "{rel.name}" (id, parentId'
                    f"{', ' + data_cols if rel.data_columns else ''}) "
                    f"SELECT id + {offset}, {parent_expr}{data_part} "
                    f'FROM "{temp_names[rel.name]}"'
                )
        finally:
            for temp in temp_names.values():
                db.execute(f'DROP TABLE IF EXISTS "{temp}"')
        return offset

    def _insert_copy_recursive(
        self, db, schema, allocator, relation, where_sql, params, new_parent_id
    ) -> None:
        """Copy subtrees of a self-recursive relation with one fix-point
        query.  Supported when the recursion is a pure self-loop (every
        reachable descendant relation is the relation itself)."""
        reachable: set[str] = set()
        queue = [relation]
        while queue:
            name = queue.pop(0)
            for child in schema.relation(name).children:
                if child not in reachable:
                    reachable.add(child)
                    queue.append(child)
        if reachable - {relation}:
            raise StorageError(
                f"recursive copy of {relation!r} with additional child "
                f"relations {sorted(reachable - {relation})} is not supported"
            )
        rel = schema.relation(relation)
        where = f" WHERE {where_sql}" if where_sql else ""
        temp = f"tmp_copy_{relation}"
        db.execute(
            f'CREATE TEMP TABLE "{temp}" AS '
            f"WITH RECURSIVE sub(sid) AS ("
            f'  SELECT id FROM "{relation}"{where}'
            f"  UNION"
            f'  SELECT p.id FROM "{relation}" p JOIN sub ON p.parentId = sub.sid'
            f') SELECT r.*, (r.id IN (SELECT id FROM "{relation}"{where})) AS is_root '
            f'FROM "{relation}" r WHERE r.id IN (SELECT sid FROM sub)',
            tuple(params) + tuple(params),
        )
        try:
            row = db.query_one(f'SELECT MIN(id), MAX(id) FROM "{temp}"')
            min_id, max_id = row if row else (None, None)
            if min_id is None:
                return None
            first_new = allocator.reserve(max_id - min_id + 1)
            offset = first_new - min_id
            data_cols = ", ".join(f'"{c}"' for c in rel.data_columns)
            data_part = f", {data_cols}" if rel.data_columns else ""
            db.execute(
                f'INSERT INTO "{relation}" (id, parentId'
                f"{', ' + data_cols if rel.data_columns else ''}) "
                f"SELECT id + {offset}, CASE WHEN is_root THEN {new_parent_id} "
                f"ELSE parentId + {offset} END{data_part} "
                f'FROM "{temp}"'
            )
        finally:
            db.execute(f'DROP TABLE IF EXISTS "{temp}"')
        return offset


class AsrInsert(InsertMethod):
    name = "asr"

    def __init__(self, asr: Optional[AsrManager] = None) -> None:
        self.asr = asr

    def install(self, db: Database, schema: MappingSchema) -> None:
        if self.asr is None:
            self.asr = AsrManager(db, schema)
        self.asr.create_all()

    def uninstall(self, db: Database, schema: MappingSchema) -> None:
        if self.asr is not None:
            self.asr.drop_all()

    def insert_copy(self, db, schema, allocator, relation, where_sql, params, new_parent_id):
        if self.asr is None:
            raise StorageError("AsrInsert used before install()")
        where = f" WHERE {where_sql}" if where_sql else ""
        id_select = f'SELECT id FROM "{relation}"{where}'
        # 1. Mark the source paths.
        self.asr.mark_subtrees(relation, id_select, params)
        try:
            # 2. Offset from the marked ids' min/max.
            relations = subtree_relations(schema, relation)
            selects = []
            for rel in relations:
                marked = self.asr.marked_descendant_ids_sql(relation, rel.name)
                if marked is not None:
                    selects.append(marked)
            union = " UNION ALL ".join(selects)
            row = db.query_one(f"SELECT MIN(cid), MAX(cid) FROM ({union})")
            min_id, max_id = row if row else (None, None)
            if min_id is None:
                return
            first_new = allocator.reserve(max_id - min_id + 1)
            offset = first_new - min_id
            # 3. Replicate tuples straight from the data relations.
            for rel in relations:
                marked = self.asr.marked_descendant_ids_sql(relation, rel.name)
                if marked is None:
                    continue
                data_cols = ", ".join(f'"{c}"' for c in rel.data_columns)
                data_part = f", {data_cols}" if rel.data_columns else ""
                if rel.name == relation:
                    parent_expr = str(new_parent_id)
                else:
                    parent_expr = f"parentId + {offset}"
                db.execute(
                    f'INSERT INTO "{rel.name}" (id, parentId'
                    f"{', ' + data_cols if rel.data_columns else ''}) "
                    f"SELECT id + {offset}, {parent_expr}{data_part} "
                    f'FROM "{rel.name}" WHERE id IN ({marked})'
                )
            # 4. Add ASR paths for the copies.
            self.asr.insert_offset_paths(relation, offset, new_parent_id)
        finally:
            # 5. Unmark.
            self.asr.unmark_all()


class IntervalCopyInsert(TableInsert):
    """Table-based copy plus interval maintenance (interval encoding).

    The data-side copy is exactly :class:`TableInsert` — same statement
    shape, same id-offset trick.  Because the copy preserves tree shape
    and shifts every tuple id by one constant, the ``node_interval``
    rows of the copies are produced the same way: each source subtree's
    (pre, post) block is shifted rigidly into a window reserved under
    the new parent, a constant number of statements per copy batch.
    """

    name = "interval"

    def __init__(self, index: Optional[IntervalIndex] = None) -> None:
        self.index = index

    def install(self, db: Database, schema: MappingSchema) -> None:
        if self.index is None or self.index.db is not db:
            self.index = IntervalIndex(db, schema)
        self.index.ensure_populated()

    def uninstall(self, db: Database, schema: MappingSchema) -> None:
        pass  # shared data, not machinery — see IntervalRangeDelete

    def insert_copy(self, db, schema, allocator, relation, where_sql, params, new_parent_id):
        if self.index is None:
            raise StorageError("IntervalCopyInsert used before install()")
        where = f" WHERE {where_sql}" if where_sql else ""
        # Snapshot the source roots before the copy: the predicate could
        # otherwise match the copies themselves on a re-evaluation.
        roots = [
            row[0]
            for row in db.query(f'SELECT id FROM "{relation}"{where}', params)
        ]
        offset = super().insert_copy(
            db, schema, allocator, relation, where_sql, params, new_parent_id
        )
        if offset is None or not roots:
            return None
        self.index.register_copies(roots, offset, new_parent_id)
        return offset


# Strategy classes by name; instantiate one per store (AsrInsert holds
# per-database state).
INSERT_METHODS = {
    method.name: method
    for method in (TupleInsert, TableInsert, AsrInsert, IntervalCopyInsert)
}
