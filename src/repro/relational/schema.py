"""Relational schema descriptors for XML-to-relational mappings.

A :class:`MappingSchema` describes how a DTD's element types map to
relations.  Every relation carries, besides its SQL columns, enough
mapping metadata to shred documents in and to reconstruct XML back out:

* which element tag the relation anchors,
* its parent relation (``None`` for the root relation),
* the **inlined fields**: PCDATA, attributes, reference lists, and
  presence flags of descendant elements folded into this relation's
  tuples, each identified by the relative element path from the anchor.

Column names follow the paper's Figure 5 convention: the inlined City
of a Customer's Address is column ``Address_City``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import MappingError

# Field kinds.
FIELD_PCDATA = "pcdata"  # text content of the element at `path`
FIELD_ATTRIBUTE = "attribute"  # a CDATA/ID attribute
FIELD_REFS = "refs"  # an IDREF/IDREFS attribute (space-separated IDs)
FIELD_PRESENCE = "presence"  # flag: inlined optional non-leaf element exists

#: Side table carrying the pre/post interval encoding (XPath accelerator)
#: of every relation-anchored tuple.  Interval-aware stores
#: (:mod:`repro.relational.interval`) keep it in sync; structural axes
#: and subtree deletes then become range predicates over ``pre``.
INTERVAL_TABLE = "node_interval"

#: Spacing between consecutive pre/post ordinals at load time.  Inserts
#: bisect into the gaps; a localized renumbering re-spaces a scope only
#: when its gap is exhausted.
DEFAULT_INTERVAL_GAP = 64


def interval_table_sql() -> list[str]:
    """DDL for the interval side table (idempotent: strategies may
    install it next to an already-created mapping)."""
    return [
        f"CREATE TABLE IF NOT EXISTS {INTERVAL_TABLE} ("
        "id INTEGER PRIMARY KEY, pre INTEGER NOT NULL, "
        "post INTEGER NOT NULL, level INTEGER NOT NULL)",
        f"CREATE UNIQUE INDEX IF NOT EXISTS idx_{INTERVAL_TABLE}_pre "
        f"ON {INTERVAL_TABLE} (pre)",
        f"CREATE INDEX IF NOT EXISTS idx_{INTERVAL_TABLE}_post "
        f"ON {INTERVAL_TABLE} (post)",
    ]


@dataclass(frozen=True)
class InlinedField:
    """One data column of a relation.

    ``path`` is the element path relative to the relation's anchor
    element (empty tuple = the anchor itself); ``name`` is the attribute
    name for attribute/refs fields and ``""`` otherwise.
    """

    column: str
    kind: str
    path: tuple[str, ...] = ()
    name: str = ""


@dataclass
class Relation:
    """One relation of the mapping."""

    name: str  # SQL table name
    tag: str  # anchoring element tag
    parent: Optional[str] = None  # parent relation name
    #: element path under the parent relation's anchor where this
    #: relation's elements attach (non-empty when the structural parent
    #: element was itself inlined)
    parent_path: tuple[str, ...] = ()
    fields: list[InlinedField] = field(default_factory=list)
    children: list[str] = field(default_factory=list)  # child relation names

    @property
    def data_columns(self) -> list[str]:
        return [f.column for f in self.fields]

    @property
    def all_columns(self) -> list[str]:
        """Column order used everywhere: id, parentId, then data."""
        return ["id", "parentId"] + self.data_columns

    def field_for(self, path: tuple[str, ...], kind: str, name: str = "") -> Optional[InlinedField]:
        for candidate in self.fields:
            if candidate.path == path and candidate.kind == kind and candidate.name == name:
                return candidate
        return None

    def attribute_column(self, name: str, path: tuple[str, ...] = ()) -> str:
        """SQL column holding attribute ``name`` of the element at ``path``
        (attributes whose name collides with a system column are suffixed,
        e.g. an XML ``ID`` attribute lands in column ``ID_2``)."""
        for kind in (FIELD_ATTRIBUTE, FIELD_REFS):
            field_found = self.field_for(path, kind, name)
            if field_found is not None:
                return field_found.column
        raise MappingError(
            f"relation {self.name!r} stores no attribute {name!r} at path {path}"
        )

    def create_table_sql(self) -> str:
        columns = ["id INTEGER PRIMARY KEY", "parentId INTEGER"]
        for inlined in self.fields:
            sql_type = "INTEGER" if inlined.kind == FIELD_PRESENCE else "TEXT"
            columns.append(f'"{inlined.column}" {sql_type}')
        return f'CREATE TABLE "{self.name}" ({", ".join(columns)})'

    def create_index_sql(self) -> str:
        return f'CREATE INDEX "idx_{self.name}_parent" ON "{self.name}" (parentId)'


@dataclass
class MappingSchema:
    """A complete mapping: relations keyed by name, plus the root."""

    kind: str  # 'inlining' | 'edge' | 'attribute'
    root: str  # root relation name
    relations: dict[str, Relation] = field(default_factory=dict)
    #: when set, the mapping carries the :data:`INTERVAL_TABLE` side
    #: table and the shredder emits gapped (pre, post, level) ordinals
    #: for every tuple it loads
    intervals: bool = False
    interval_gap: int = DEFAULT_INTERVAL_GAP

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise MappingError(f"no relation named {name!r} in this mapping") from None

    def relation_for_tag(self, tag: str) -> Optional[Relation]:
        """The relation anchored at element tag ``tag``, if any."""
        for relation in self.relations.values():
            if relation.tag == tag:
                return relation
        return None

    def child_relations(self, name: str) -> list[Relation]:
        return [self.relations[child] for child in self.relation(name).children]

    def parent_relations_of(self, name: str) -> list[str]:
        """Every relation whose tuples may parent ``name``'s tuples.

        For tree mappings this is the single declared parent; a
        recursive relation additionally parents itself (e.g. part tuples
        hang under assembly tuples AND under other part tuples)."""
        self.relation(name)  # existence check
        return [
            candidate.name
            for candidate in self.relations.values()
            if name in candidate.children
        ]

    def iter_top_down(self) -> Iterator[Relation]:
        """Relations in breadth-first order from the root.

        Recursive mappings make the children graph a DAG (a relation may
        be its own child); each relation is yielded once.
        """
        queue = [self.root]
        visited: set[str] = set()
        while queue:
            name = queue.pop(0)
            if name in visited:
                continue
            visited.add(name)
            relation = self.relations[name]
            yield relation
            queue.extend(relation.children)

    def depth_of(self, name: str) -> int:
        """0-based depth of a relation below the root relation."""
        depth = 0
        current = self.relation(name)
        while current.parent is not None:
            current = self.relation(current.parent)
            depth += 1
        return depth

    def path_to(self, name: str) -> list[Relation]:
        """Relations from the root down to (and including) ``name``."""
        chain: list[Relation] = []
        current: Optional[Relation] = self.relation(name)
        while current is not None:
            chain.append(current)
            current = self.relations[current.parent] if current.parent else None
        return list(reversed(chain))

    def max_depth(self) -> int:
        return max(self.depth_of(name) for name in self.relations)

    def create_all_sql(self) -> list[str]:
        statements: list[str] = []
        for relation in self.iter_top_down():
            statements.append(relation.create_table_sql())
            statements.append(relation.create_index_sql())
        if self.intervals:
            statements.extend(interval_table_sql())
        return statements
