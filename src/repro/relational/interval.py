"""Interval (pre/post) encoding: the XPath accelerator as a fourth mapping.

Every node carries ``(pre, post, parent, level)``.  ``pre``/``post`` are
the entry/exit ordinals of a depth-first walk, so the structural axes
collapse into range predicates over the ``pre`` index:

* descendant(a): ``pre > a.pre AND pre < a.post``
* ancestor(d):   ``pre < d.pre AND post > d.post``
* following(c):  ``pre > c.post``
* preceding(c):  ``post < c.pre``

and a whole-subtree delete is ``DELETE … WHERE pre BETWEEN a.pre AND
a.post`` — one statement regardless of subtree size or fan-out.

The update-maintenance half is the hard part.  Ordinals are **gapped**
(spaced integers, :data:`~repro.relational.schema.DEFAULT_INTERVAL_GAP`
apart at load time) so inserts bisect into free integers without
touching neighbours.  When a gap is exhausted, the
:class:`OrdinalAllocator` **renumbers locally**: it re-spaces the
smallest enclosing element scope whose width can host its boundaries
plus the requested reservation, escalating to outer ancestors only when
the inner scope is too dense, and at the document root it simply widens
``root.post`` (the one ordinal nothing else constrains).  Renumber
frequency and cost are observable via the ``interval.renumber.*``
metrics, mirroring how the ordered store reports its sibling-dictionary
maintenance.

Three layers live here, none of which import the store (so the strategy
registries can import this module without a cycle):

* :class:`OrdinalAllocator` — gapped window allocation + renumbering
  over any table with ``(id, pre, post, level)`` columns.
* :class:`IntervalIndex` — the ``node_interval`` side table that
  interval-aware *strategies* and the interval store maintain alongside
  an inlining mapping.
* :class:`IntervalMapping` — a standalone single-table mapping (the
  "fourth mapping" next to edge/attribute/inlining) used by the mapping
  ablation benchmarks and the edge-equivalence property suite.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import StorageError
from repro.obs import get_registry
from repro.relational.database import Database
from repro.relational.edge import (
    KIND_ATTRIBUTE,
    KIND_ELEMENT,
    KIND_REF,
    KIND_TEXT,
    _count_objects,
)
from repro.relational.idgen import IdAllocator
from repro.relational.schema import (
    DEFAULT_INTERVAL_GAP,
    INTERVAL_TABLE,
    MappingSchema,
    interval_table_sql,
)
from repro.xmlmodel.model import Document, Element, Text

#: OR'd ``pre BETWEEN ? AND ?`` terms per DELETE / per INSERT…SELECT CASE
#: arm; keeps statements far under SQLite's parameter limit.
MAX_RANGES_PER_DELETE = 400

#: When a range delete would leave at most this many index rows behind,
#: copy the survivors out, truncate, and re-insert them instead.
SURVIVOR_TRUNCATE_LIMIT = 256
MAX_RANGES_PER_CASE = 48

#: windows re-resolved after a concurrent renumber before giving up
_MAX_RENUMBER_ATTEMPTS = 16


def merge_ranges(rows: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Drop ranges nested inside an earlier one (input sorted by pre).

    Pre/post intervals are properly nested, so a later range starting
    inside the current one is wholly contained by it.
    """
    merged: list[tuple[int, int]] = []
    for pre, post in rows:
        if merged and pre < merged[-1][1]:
            continue
        merged.append((pre, post))
    return merged


def coalesce_ranges(
    db: Database,
    ranges: Sequence[tuple[int, int]],
    table: str = INTERVAL_TABLE,
) -> list[tuple[int, int]]:
    """Fuse adjacent ranges whose separating gap holds no live row.

    Sibling subtrees are separated only by gapped-ordinal slack, so a
    bulk delete of a whole child set coalesces to **one**
    ``pre BETWEEN ? AND ?`` instead of one OR term per subtree.  One
    probe statement checks every gap (an indexed point lookup per gap);
    a gap row (an undeleted sibling between two doomed ones) keeps the
    ranges apart.  Input must be sorted by ``pre`` and non-overlapping
    (:func:`merge_ranges` output).
    """
    if len(ranges) < 2:
        return list(ranges)
    gaps = [
        (ranges[i][1] + 1, ranges[i + 1][0] - 1)
        for i in range(len(ranges) - 1)
        if ranges[i][1] + 1 <= ranges[i + 1][0] - 1
    ]
    occupied: set[int] = set()
    for chunk in _chunks(gaps, MAX_RANGES_PER_DELETE):
        values = ", ".join("(?, ?)" for _ in chunk)
        params: list[int] = []
        for lo, hi in chunk:
            params.extend((lo, hi))
        rows = db.query(
            f"SELECT g.column1 FROM (VALUES {values}) g "
            f"JOIN {table} n ON n.pre BETWEEN g.column1 AND g.column2 "
            "GROUP BY g.column1",
            params,
        )
        occupied.update(row[0] for row in rows)
    fused: list[list[int]] = [list(ranges[0])]
    for pre, post in ranges[1:]:
        gap_lo = fused[-1][1] + 1
        if gap_lo > pre - 1 or gap_lo not in occupied:
            fused[-1][1] = post
        else:
            fused.append([pre, post])
    return [(lo, hi) for lo, hi in fused]


def range_predicate(ranges: Sequence[tuple[int, int]]) -> tuple[str, list[int]]:
    """``(pre BETWEEN ? AND ?) OR …`` plus its flattened parameters."""
    sql = " OR ".join("(pre BETWEEN ? AND ?)" for _ in ranges)
    params: list[int] = []
    for pre, post in ranges:
        params.extend((pre, post))
    return sql, params


def _chunks(items: Sequence, size: int) -> Iterable[Sequence]:
    for start in range(0, len(items), size):
        yield items[start:start + size]


class OrdinalAllocator:
    """Gapped pre/post ordinal management over one interval table.

    ``window_for_*`` return an exclusive window ``(lo, hi)`` whose
    interior holds at least ``need`` free integers at the requested
    position, renumbering (and thereby moving ``lo``/``hi``) as needed.
    ``renumber_events`` lets callers detect that cached coordinates went
    stale — the plan cache's renumber generation bump keys off it.
    """

    def __init__(self, db: Database, table: str = INTERVAL_TABLE,
                 gap: int = DEFAULT_INTERVAL_GAP) -> None:
        if gap < 4:
            raise ValueError("interval gap must be at least 4")
        self.db = db
        self.table = table
        self.gap = gap
        self.renumber_events = 0

    def bounds(self, node_id: int) -> tuple[int, int, int]:
        row = self.db.query_one(
            f"SELECT pre, post, level FROM {self.table} WHERE id = ?", (node_id,)
        )
        if row is None:
            raise StorageError(f"node {node_id} is not in the interval index")
        return row

    # ------------------------------------------------------------------
    # Window allocation
    # ------------------------------------------------------------------
    def window_for_append(self, parent_id: int, need: int) -> tuple[int, int]:
        """Window after the last child of ``parent_id`` (before its post)."""
        for _ in range(_MAX_RENUMBER_ATTEMPTS):
            pre, post, _level = self.bounds(parent_id)
            row = self.db.query_one(
                "SELECT MAX(v) FROM ("
                f"SELECT MAX(pre) AS v FROM {self.table} WHERE pre > ? AND pre < ? "
                "UNION ALL "
                f"SELECT MAX(post) AS v FROM {self.table} WHERE post > ? AND post < ?)",
                (pre, post, pre, post),
            )
            lo = row[0] if row is not None and row[0] is not None else pre
            if post - lo - 1 >= need:
                return lo, post
            self._renumber(lo, post, need)
        raise StorageError("interval window did not stabilise after renumbering")

    def window_for_before(self, anchor_id: int, need: int) -> tuple[int, int]:
        """Window immediately before ``anchor_id``'s pre ordinal."""
        for _ in range(_MAX_RENUMBER_ATTEMPTS):
            apre, _apost, _level = self.bounds(anchor_id)
            row = self.db.query_one(
                "SELECT MAX(v) FROM ("
                f"SELECT MAX(pre) AS v FROM {self.table} WHERE pre < ? "
                "UNION ALL "
                f"SELECT MAX(post) AS v FROM {self.table} WHERE post < ?)",
                (apre, apre),
            )
            if row is None or row[0] is None:
                raise StorageError("cannot insert before the document root")
            lo = row[0]
            if apre - lo - 1 >= need:
                return lo, apre
            self._renumber(lo, apre, need)
        raise StorageError("interval window did not stabilise after renumbering")

    def window_for_after(self, anchor_id: int, need: int) -> tuple[int, int]:
        """Window immediately after ``anchor_id``'s post ordinal."""
        for _ in range(_MAX_RENUMBER_ATTEMPTS):
            _apre, apost, _level = self.bounds(anchor_id)
            row = self.db.query_one(
                "SELECT MIN(v) FROM ("
                f"SELECT MIN(pre) AS v FROM {self.table} WHERE pre > ? "
                "UNION ALL "
                f"SELECT MIN(post) AS v FROM {self.table} WHERE post > ?)",
                (apost, apost),
            )
            if row is None or row[0] is None:
                raise StorageError("cannot insert after the document root")
            hi = row[0]
            if hi - apost - 1 >= need:
                return apost, hi
            self._renumber(apost, hi, need)
        raise StorageError("interval window did not stabilise after renumbering")

    def place(self, lo: int, hi: int, count: int, pack: str = "spread") -> list[int]:
        """``count`` increasing integers strictly inside ``(lo, hi)``.

        ``pack`` picks where the leftover slack goes: ``"spread"``
        distributes it evenly, ``"low"`` packs values near ``lo`` (slack
        ends up next to ``hi`` — right where the *next* insert-before or
        append will bisect), ``"high"`` packs near ``hi`` (slack next to
        ``lo``, the hot side of insert-after).  Hot-side packing is what
        turns a renumber's reserved headroom into many follow-up inserts
        instead of one.
        """
        if hi - lo - 1 < count:
            raise StorageError("window too small for placement")
        if pack == "spread":
            step = (hi - lo) // (count + 1)
            return [lo + (index + 1) * step for index in range(count)]
        step = 2 if hi - lo - 1 >= 2 * count else 1
        if pack == "low":
            return [lo + step * (index + 1) for index in range(count)]
        return [hi - step * (count - index) for index in range(count)]

    # ------------------------------------------------------------------
    # Renumbering
    # ------------------------------------------------------------------
    def _renumber(self, lo: int, hi: int, need: int) -> None:
        """Re-space the smallest enclosing scope that can host its
        boundary events plus ``need`` reserved integers between the
        current ordinal values ``lo`` and ``hi``.

        Scopes are walked innermost-first; a scope whose width cannot
        grant at least unit spacing escalates outward.  The outermost
        scope (the root) always succeeds: its post ordinal bounds
        nothing, so it is pushed out to restore full gap spacing.
        """
        registry = get_registry()
        # Reserve well past the immediate request: renumbering costs the
        # same either way, and combined with hot-side packing the extra
        # headroom amortises one renumber over many follow-up inserts.
        need = need + 4 * self.gap
        scopes = self.db.query(
            f"SELECT id, pre, post FROM {self.table} "
            "WHERE pre <= ? AND post >= ? ORDER BY pre DESC",
            (lo, hi),
        )
        if not scopes:
            raise StorageError("no enclosing scope to renumber")
        escalations = 0
        for position, (scope_id, spre, spost) in enumerate(scopes):
            at_root = position == len(scopes) - 1
            inside = self.db.query_one(
                f"SELECT COUNT(*) FROM {self.table} WHERE pre > ? AND post < ?",
                (spre, spost),
            )[0]
            events = 2 * inside
            width = spost - spre - 1
            step = (width - need) // (events + 1) if width > need else 0
            if step < 1:
                if not at_root:
                    escalations += 1
                    continue
                step = self.gap  # widen the root interval instead
            self._respace(scope_id, spre, spost, lo, need, step, at_root)
            self.renumber_events += 1
            registry.counter("interval.renumber.count").inc()
            registry.counter("interval.renumber.nodes").inc(inside)
            if escalations:
                registry.counter("interval.renumber.escalations").inc(escalations)
            return
        raise StorageError("renumbering failed to find a scope")

    def _respace(self, scope_id: int, spre: int, spost: int, lo: int,
                 need: int, step: int, widen_root: bool) -> None:
        rows = self.db.query(
            f"SELECT id, pre, post FROM {self.table} "
            "WHERE pre > ? AND post < ? ORDER BY pre",
            (spre, spost),
        )
        events: list[tuple[int, int, int]] = []
        for node_id, pre, post in rows:
            events.append((pre, node_id, 0))
            events.append((post, node_id, 1))
        events.sort()
        new_values: dict[int, list[Optional[int]]] = {}
        cursor = spre
        placed = False
        for value, node_id, side in events:
            if not placed and value > lo:
                cursor += need  # the reservation the caller is waiting on
                placed = True
            cursor += step
            new_values.setdefault(node_id, [None, None])[side] = cursor
        if not placed:
            cursor += need
        end = cursor + step
        if widen_root:
            self.db.execute(
                f"UPDATE {self.table} SET post = ? WHERE id = ?", (end, scope_id)
            )
        elif end > spost:
            raise StorageError("interval renumbering overflowed its scope")
        # Two-phase write: new ordinals may transiently collide with old
        # ones under the UNIQUE pre index, so park them as negatives
        # first, then flip the sign in one statement.
        updates = [
            (-values[0], -values[1], node_id)
            for node_id, values in new_values.items()
        ]
        if updates:
            self.db.executemany(
                f"UPDATE {self.table} SET pre = ?, post = ? WHERE id = ?", updates
            )
            self.db.execute(
                f"UPDATE {self.table} SET pre = -pre, post = -post WHERE pre < 0"
            )


class IntervalIndex:
    """The ``node_interval`` side table over an inlining-mapped store.

    One row per relation-anchored tuple (the granularity updates and
    deletes operate at), regardless of which relation holds the tuple.
    """

    def __init__(self, db: Database, schema: MappingSchema,
                 gap: Optional[int] = None) -> None:
        self.db = db
        self.schema = schema
        for statement in interval_table_sql():
            db.execute(statement)
        self.space = OrdinalAllocator(
            db, INTERVAL_TABLE, gap if gap is not None else schema.interval_gap
        )

    @property
    def renumber_events(self) -> int:
        return self.space.renumber_events

    def count(self) -> int:
        return self.db.query_one(f"SELECT COUNT(*) FROM {INTERVAL_TABLE}")[0]

    # ------------------------------------------------------------------
    # (Re)building
    # ------------------------------------------------------------------
    def ensure_populated(self) -> None:
        """Index the mapping's existing tuples unless already indexed."""
        if self.count() == 0:
            self._index_all()

    def rebuild(self) -> None:
        self.db.execute(f"DELETE FROM {INTERVAL_TABLE}")
        self._index_all()

    def _index_all(self) -> None:
        by_parent: dict[int, list[int]] = {}
        root_ids: list[int] = []
        for relation in self.schema.iter_top_down():
            for node_id, parent_id in self.db.query(
                f'SELECT id, parentId FROM "{relation.name}"'
            ):
                if parent_id is None:
                    root_ids.append(node_id)
                else:
                    by_parent.setdefault(parent_id, []).append(node_id)
        for children in by_parent.values():
            children.sort()
        gap = self.space.gap
        counter = 0
        rows: list[tuple[int, int, int, int]] = []
        for root in sorted(root_ids):
            stack: list[tuple[int, int, bool]] = [(root, 0, False)]
            pre_of: dict[int, int] = {}
            while stack:
                node, depth, leaving = stack.pop()
                counter += gap
                if leaving:
                    rows.append((node, pre_of[node], counter, depth))
                else:
                    pre_of[node] = counter
                    stack.append((node, depth, True))
                    for child in reversed(by_parent.get(node, ())):
                        stack.append((child, depth + 1, False))
        self.db.executemany(
            f"INSERT INTO {INTERVAL_TABLE} (id, pre, post, level) VALUES (?, ?, ?, ?)",
            rows,
        )

    # ------------------------------------------------------------------
    # Range lookups
    # ------------------------------------------------------------------
    def range_of(self, node_id: int) -> tuple[int, int]:
        pre, post, _level = self.space.bounds(node_id)
        return pre, post

    def ranges_for(self, id_select_sql: str,
                   params: Sequence = ()) -> list[tuple[int, int]]:
        """Merged (pre, post) ranges of the ids a subquery selects."""
        rows = self.db.query(
            f"SELECT pre, post FROM {INTERVAL_TABLE} "
            f"WHERE id IN ({id_select_sql}) ORDER BY pre",
            params,
        )
        return coalesce_ranges(self.db, merge_ranges(rows))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def delete_ranges(self, ranges: Sequence[tuple[int, int]]) -> None:
        if len(ranges) <= MAX_RANGES_PER_DELETE and self._truncate_if_dominant(ranges):
            return
        for chunk in _chunks(ranges, MAX_RANGES_PER_DELETE):
            predicate, params = range_predicate(chunk)
            self.db.execute(
                f"DELETE FROM {INTERVAL_TABLE} WHERE {predicate}", params
            )

    def _truncate_if_dominant(self, ranges: Sequence[tuple[int, int]]) -> bool:
        """When the ranges cover almost the whole index, re-inserting the
        few survivors after a table truncation beats maintaining both
        ordinal indexes through a near-total range delete."""
        predicate, params = range_predicate(ranges)
        inside = self.db.query_one(
            f"SELECT COUNT(*) FROM {INTERVAL_TABLE} WHERE {predicate}", params
        )[0]
        if self.count() - inside > SURVIVOR_TRUNCATE_LIMIT:
            return False
        survivors = self.db.query(
            f"SELECT id, pre, post, level FROM {INTERVAL_TABLE} "
            f"WHERE NOT ({predicate})",
            params,
        )
        self.db.execute(f"DELETE FROM {INTERVAL_TABLE}")
        if survivors:
            self.db.executemany(
                f"INSERT INTO {INTERVAL_TABLE} (id, pre, post, level) "
                "VALUES (?, ?, ?, ?)",
                survivors,
            )
        return True

    def register_append(self, node_id: int, parent_id: int,
                        slots: int = 2) -> None:
        """Index ``node_id`` as the new last child of ``parent_id``.

        ``slots >= 2`` reserves extra interior room when the node roots a
        subtree whose descendants will be appended inside it next.
        """
        _pre, _post, parent_level = self.space.bounds(parent_id)
        lo, hi = self.space.window_for_append(parent_id, slots)
        values = self.space.place(lo, hi, slots, pack="low")
        self._insert(node_id, values[0], values[-1], parent_level + 1)

    def register_before(self, node_id: int, anchor_id: int,
                        slots: int = 2) -> None:
        _pre, _post, level = self.space.bounds(anchor_id)
        lo, hi = self.space.window_for_before(anchor_id, slots)
        values = self.space.place(lo, hi, slots, pack="low")
        self._insert(node_id, values[0], values[-1], level)

    def register_after(self, node_id: int, anchor_id: int,
                       slots: int = 2) -> None:
        _pre, _post, level = self.space.bounds(anchor_id)
        lo, hi = self.space.window_for_after(anchor_id, slots)
        values = self.space.place(lo, hi, slots, pack="high")
        self._insert(node_id, values[0], values[-1], level)

    def _insert(self, node_id: int, pre: int, post: int, level: int) -> None:
        self.db.execute(
            f"INSERT INTO {INTERVAL_TABLE} (id, pre, post, level) "
            "VALUES (?, ?, ?, ?)",
            (node_id, pre, post, level),
        )

    def register_copies(self, root_ids: Sequence[int], offset: int,
                        new_parent_id: int) -> None:
        """Index copied subtrees after a table-based bulk copy.

        The data-side copy preserved tree shape and shifted every tuple
        id by ``offset``; the interval rows can therefore be produced by
        the same trick — shift each source subtree's (pre, post) block
        rigidly into a window reserved under the new parent.  Statement
        count stays constant in the number of copied *tuples*: one
        ``INSERT … SELECT`` per :data:`MAX_RANGES_PER_CASE` source roots.

        Nested source roots (one selected root inside another) are not
        supported; the mapping's tree schemas never produce them.
        """
        if not root_ids:
            return
        _pre, _post, parent_level = self.space.bounds(new_parent_id)
        rows: list[tuple[int, int, int, int]] = []
        for _ in range(_MAX_RENUMBER_ATTEMPTS):
            placeholders = ", ".join("?" for _ in root_ids)
            rows = self.db.query(
                f"SELECT id, pre, post, level FROM {INTERVAL_TABLE} "
                f"WHERE id IN ({placeholders}) ORDER BY pre",
                tuple(root_ids),
            )
            if len(rows) != len(set(root_ids)):
                raise StorageError("copy source is not fully interval-indexed")
            need = sum(post - pre + 2 for _id, pre, post, _level in rows)
            marker = self.space.renumber_events
            lo, _hi = self.space.window_for_append(new_parent_id, need)
            if self.space.renumber_events == marker:
                break
        else:
            raise StorageError("interval copy window did not stabilise")
        shifted: list[tuple[int, int, int, int]] = []  # (pre, post, delta, dlevel)
        cursor = lo
        for _id, pre, post, level in rows:
            shifted.append((pre, post, cursor + 1 - pre, parent_level + 1 - level))
            cursor += (post - pre) + 2
        for chunk in _chunks(shifted, MAX_RANGES_PER_CASE):
            pre_case = " ".join("WHEN pre BETWEEN ? AND ? THEN pre + ?" for _ in chunk)
            post_case = " ".join("WHEN pre BETWEEN ? AND ? THEN post + ?" for _ in chunk)
            level_case = " ".join("WHEN pre BETWEEN ? AND ? THEN level + ?" for _ in chunk)
            where = " OR ".join("(pre BETWEEN ? AND ?)" for _ in chunk)
            params: list[int] = [offset]
            for a, b, delta, _dl in chunk:
                params.extend((a, b, delta))
            for a, b, delta, _dl in chunk:
                params.extend((a, b, delta))
            for a, b, _delta, dlevel in chunk:
                params.extend((a, b, dlevel))
            for a, b, _delta, _dl in chunk:
                params.extend((a, b))
            self.db.execute(
                f"INSERT INTO {INTERVAL_TABLE} (id, pre, post, level) "
                f"SELECT id + ?, CASE {pre_case} END, CASE {post_case} END, "
                f"CASE {level_case} END FROM {INTERVAL_TABLE} WHERE {where}",
                params,
            )

    def index_new(self) -> int:
        """Append-index any tuples the data relations hold but the index
        does not (content spliced in by a non-positional insert)."""
        pending: list[tuple[int, int]] = []
        for relation in self.schema.iter_top_down():
            pending.extend(
                self.db.query(
                    f'SELECT id, parentId FROM "{relation.name}" '
                    f"WHERE id NOT IN (SELECT id FROM {INTERVAL_TABLE})"
                )
            )
        indexed = 0
        for node_id, parent_id in sorted(pending):
            if parent_id is None:
                continue
            self.register_append(node_id, parent_id)
            indexed += 1
        return indexed

    def sweep_deleted(self) -> int:
        """Drop index rows whose tuples no longer exist in any relation."""
        union = " UNION ALL ".join(
            f'SELECT id FROM "{relation.name}"'
            for relation in self.schema.iter_top_down()
        )
        cursor = self.db.execute(
            f"DELETE FROM {INTERVAL_TABLE} WHERE id NOT IN ({union})"
        )
        return cursor.rowcount

    def validate(self) -> None:
        """Sanity check used by tests: every tuple indexed, child
        intervals strictly inside their parent's."""
        for relation in self.schema.iter_top_down():
            missing = self.db.query_one(
                f'SELECT COUNT(*) FROM "{relation.name}" '
                f"WHERE id NOT IN (SELECT id FROM {INTERVAL_TABLE})"
            )[0]
            if missing:
                raise StorageError(f"{missing} unindexed tuples in {relation.name}")
            bad = self.db.query_one(
                f'SELECT COUNT(*) FROM "{relation.name}" r '
                f"JOIN {INTERVAL_TABLE} n ON n.id = r.id "
                f"JOIN {INTERVAL_TABLE} p ON p.id = r.parentId "
                "WHERE r.parentId IS NOT NULL AND NOT "
                "(n.pre > p.pre AND n.post < p.post AND n.pre < n.post "
                "AND n.level = p.level + 1)"
            )[0]
            if bad:
                raise StorageError(
                    f"{bad} tuples of {relation.name} have intervals outside "
                    "their parent's"
                )


class IntervalMapping:
    """The standalone fourth mapping: one ``accel`` table, pre/post axes.

    Mirrors :class:`~repro.relational.edge.EdgeMapping`'s API (and its
    object emission order, so reconstruction serializes byte-identically)
    while replacing every structural operation with a range scan.
    """

    TABLE_SQL = """\
CREATE TABLE accel (
    id INTEGER PRIMARY KEY,
    parentId INTEGER,
    kind TEXT NOT NULL,
    name TEXT,
    value TEXT,
    pre INTEGER NOT NULL,
    post INTEGER NOT NULL,
    level INTEGER NOT NULL
)"""

    def __init__(self, db: Optional[Database] = None,
                 gap: int = DEFAULT_INTERVAL_GAP) -> None:
        self.db = db or Database()
        self.db.execute(self.TABLE_SQL)
        self.db.execute("CREATE UNIQUE INDEX idx_accel_pre ON accel (pre)")
        self.db.execute("CREATE INDEX idx_accel_post ON accel (post)")
        self.db.execute("CREATE INDEX idx_accel_name ON accel (name)")
        self.allocator = IdAllocator(self.db)
        self.space = OrdinalAllocator(self.db, "accel", gap)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, document: Document) -> int:
        rows: list[tuple] = []
        total = _count_objects(document.root)
        next_id = self.allocator.reserve(total)
        gap = self.space.gap
        counter = 0

        def ordinal() -> int:
            nonlocal counter
            counter += gap
            return counter

        def emit(element: Element, parent_id: Optional[int], level: int) -> int:
            nonlocal next_id
            element_id = next_id
            next_id += 1
            pre = ordinal()
            for attribute in element.attributes.values():
                rows.append((next_id, element_id, KIND_ATTRIBUTE, attribute.name,
                             attribute.value, ordinal(), ordinal(), level + 1))
                next_id += 1
            for reference in element.references.values():
                for entry in reference.entries:
                    rows.append((next_id, element_id, KIND_REF, reference.name,
                                 entry.target, ordinal(), ordinal(), level + 1))
                    next_id += 1
            for child in element.children:
                if isinstance(child, Text):
                    rows.append((next_id, element_id, KIND_TEXT, None, child.value,
                                 ordinal(), ordinal(), level + 1))
                    next_id += 1
                else:
                    emit(child, element_id, level + 1)
            rows.append((element_id, parent_id, KIND_ELEMENT, element.name, None,
                         pre, ordinal(), level))
            return element_id

        root_id = emit(document.root, None, 0)
        self.db.executemany(
            "INSERT INTO accel (id, parentId, kind, name, value, pre, post, level) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        self.db.commit()
        return root_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def element_ids(self, name: str,
                    child_text: Optional[tuple[str, str]] = None) -> list[int]:
        if child_text is None:
            rows = self.db.query(
                "SELECT id FROM accel WHERE kind = ? AND name = ? ORDER BY pre",
                (KIND_ELEMENT, name),
            )
            return [row[0] for row in rows]
        child_name, text = child_text
        rows = self.db.query(
            "SELECT e.id FROM accel e JOIN accel c ON c.parentId = e.id "
            "JOIN accel t ON t.parentId = c.id "
            "WHERE e.kind = ? AND e.name = ? AND c.kind = ? AND c.name = ? "
            "AND t.kind = ? AND t.value = ? ORDER BY e.pre",
            (KIND_ELEMENT, name, KIND_ELEMENT, child_name, KIND_TEXT, text),
        )
        return [row[0] for row in rows]

    def _axis(self, sql: str, params: Sequence) -> list[int]:
        return [row[0] for row in self.db.query(sql, params)]

    def descendant_ids(self, element_id: int) -> list[int]:
        pre, post, _level = self.space.bounds(element_id)
        return self._axis(
            "SELECT id FROM accel WHERE kind = ? AND pre > ? AND pre < ? "
            "ORDER BY pre",
            (KIND_ELEMENT, pre, post),
        )

    def ancestor_ids(self, element_id: int) -> list[int]:
        pre, post, _level = self.space.bounds(element_id)
        return self._axis(
            "SELECT id FROM accel WHERE kind = ? AND pre < ? AND post > ? "
            "ORDER BY pre",
            (KIND_ELEMENT, pre, post),
        )

    def following_ids(self, element_id: int) -> list[int]:
        _pre, post, _level = self.space.bounds(element_id)
        return self._axis(
            "SELECT id FROM accel WHERE kind = ? AND pre > ? ORDER BY pre",
            (KIND_ELEMENT, post),
        )

    def preceding_ids(self, element_id: int) -> list[int]:
        pre, _post, _level = self.space.bounds(element_id)
        return self._axis(
            "SELECT id FROM accel WHERE kind = ? AND post < ? ORDER BY pre",
            (KIND_ELEMENT, pre),
        )

    def child_ids(self, element_id: int) -> list[int]:
        return self._axis(
            "SELECT id FROM accel WHERE kind = ? AND parentId = ? ORDER BY pre",
            (KIND_ELEMENT, element_id),
        )

    def reconstruct(self, element_id: int) -> Element:
        """Rebuild a subtree from one ordered range scan.

        ``ORDER BY pre`` is document order, so every parent arrives
        before its children and siblings arrive in order — no recursive
        CTE and no client-side re-sort.
        """
        pre, post, _level = self.space.bounds(element_id)
        rows = self.db.query(
            "SELECT id, parentId, kind, name, value FROM accel "
            "WHERE pre BETWEEN ? AND ? ORDER BY pre",
            (pre, post),
        )
        by_id: dict[int, Element] = {}
        root: Optional[Element] = None
        for row_id, parent_id, kind, name, value in rows:
            if kind == KIND_ELEMENT:
                element = Element(name)
                by_id[row_id] = element
                if row_id == element_id:
                    root = element
                else:
                    by_id[parent_id].append_child(element)
            elif kind == KIND_ATTRIBUTE:
                by_id[parent_id].set_attribute(name, value)
            elif kind == KIND_REF:
                by_id[parent_id].add_reference(name, value)
            elif kind == KIND_TEXT:
                by_id[parent_id].append_child(Text(value))
        if root is None:
            raise LookupError(f"no element with id {element_id}")
        return root

    def to_document(self) -> Document:
        row = self.db.query_one(
            "SELECT id FROM accel WHERE parentId IS NULL AND kind = ?",
            (KIND_ELEMENT,),
        )
        if row is None:
            raise LookupError("mapping holds no document")
        return Document(self.reconstruct(row[0]))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def delete_subtrees(self, ids: Sequence[int]) -> None:
        """Delete whole subtrees as range deletes — one statement per
        :data:`MAX_RANGES_PER_DELETE` subtrees, regardless of their size."""
        if not ids:
            return
        placeholders = ", ".join("?" for _ in ids)
        ranges = merge_ranges(
            self.db.query(
                f"SELECT pre, post FROM accel WHERE id IN ({placeholders}) "
                "ORDER BY pre",
                tuple(ids),
            )
        )
        ranges = coalesce_ranges(self.db, ranges, table="accel")
        get_registry().counter("interval.range_deletes").inc()
        for chunk in _chunks(ranges, MAX_RANGES_PER_DELETE):
            predicate, params = range_predicate(chunk)
            self.db.execute(f"DELETE FROM accel WHERE {predicate}", params)

    def copy_subtree(self, element_id: int, new_parent_id: int) -> int:
        """Copy one subtree under a new parent with one shift INSERT.

        Ids were assigned depth-first, so the source subtree occupies a
        contiguous id block; fresh ids are the block shifted by a
        constant, and (pre, post) shift rigidly into a window reserved
        under the new parent.
        """
        _pre, _post, parent_level = self.space.bounds(new_parent_id)
        for _ in range(_MAX_RENUMBER_ATTEMPTS):
            pre, post, level = self.space.bounds(element_id)
            marker = self.space.renumber_events
            lo, _hi = self.space.window_for_append(new_parent_id, post - pre + 2)
            if self.space.renumber_events == marker:
                break
        else:
            raise StorageError("interval copy window did not stabilise")
        min_id, max_id = self.db.query_one(
            "SELECT MIN(id), MAX(id) FROM accel WHERE pre BETWEEN ? AND ?",
            (pre, post),
        )
        offset = self.allocator.reserve(max_id - min_id + 1) - min_id
        delta = lo + 1 - pre
        self.db.execute(
            "INSERT INTO accel (id, parentId, kind, name, value, pre, post, level) "
            "SELECT id + ?, CASE WHEN id = ? THEN ? ELSE parentId + ? END, "
            "kind, name, value, pre + ?, post + ?, level + ? "
            "FROM accel WHERE pre BETWEEN ? AND ?",
            (offset, element_id, new_parent_id, offset, delta, delta,
             parent_level + 1 - level, pre, post),
        )
        return element_id + offset

    def insert_subtree(self, element: Element, parent_id: Optional[int] = None,
                       before_id: Optional[int] = None,
                       after_id: Optional[int] = None) -> int:
        """Insert constructed content at a position (append / before /
        after), bisecting the gapped ordinal space."""
        total = _count_objects(element)
        need = 2 * total
        if before_id is not None:
            _apre, _apost, level = self.space.bounds(before_id)
            lo, hi = self.space.window_for_before(before_id, need)
            pack = "low"
        elif after_id is not None:
            _apre, _apost, level = self.space.bounds(after_id)
            lo, hi = self.space.window_for_after(after_id, need)
            pack = "high"
        elif parent_id is not None:
            _ppre, _ppost, parent_level = self.space.bounds(parent_id)
            level = parent_level + 1
            lo, hi = self.space.window_for_append(parent_id, need)
            pack = "low"
        else:
            raise StorageError("insert_subtree needs a parent or an anchor")
        slots = iter(self.space.place(lo, hi, need, pack=pack))
        next_id = self.allocator.reserve(total)
        rows: list[tuple] = []
        if before_id is not None or after_id is not None:
            anchor = before_id if before_id is not None else after_id
            parent_id = self.db.query_one(
                "SELECT parentId FROM accel WHERE id = ?", (anchor,)
            )[0]

        def emit(node: Element, parent: Optional[int], depth: int) -> int:
            nonlocal next_id
            node_id = next_id
            next_id += 1
            pre = next(slots)
            for attribute in node.attributes.values():
                rows.append((next_id, node_id, KIND_ATTRIBUTE, attribute.name,
                             attribute.value, next(slots), next(slots), depth + 1))
                next_id += 1
            for reference in node.references.values():
                for entry in reference.entries:
                    rows.append((next_id, node_id, KIND_REF, reference.name,
                                 entry.target, next(slots), next(slots), depth + 1))
                    next_id += 1
            for child in node.children:
                if isinstance(child, Text):
                    rows.append((next_id, node_id, KIND_TEXT, None, child.value,
                                 next(slots), next(slots), depth + 1))
                    next_id += 1
                else:
                    emit(child, node_id, depth + 1)
            rows.append((node_id, parent, KIND_ELEMENT, node.name, None,
                         pre, next(slots), depth))
            return node_id

        root_id = emit(element, parent_id, level)
        self.db.executemany(
            "INSERT INTO accel (id, parentId, kind, name, value, pre, post, level) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        get_registry().counter("interval.inserts").inc()
        return root_id

    def count(self) -> int:
        return self.db.query_one("SELECT COUNT(*) FROM accel")[0]

    @property
    def renumber_events(self) -> int:
        return self.space.renumber_events
