"""Shared Inlining: derive a relational schema from a DTD (Section 5.1).

Following Shanmugasundaram et al. [14] as summarised by the paper: a
child element that occurs *at most once* per parent is inlined into the
parent's relation (its PCDATA and attributes become columns, named by
the element path, e.g. ``Address_City``); a child with a 1:n
relationship gets its own relation linked via ``id``/``parentId``.

Element types that warrant their own relation ("table types"):

* the document root;
* any type occurring with cardinality *many* under some parent
  (including mixed-content children);
* any type on a cycle in the DTD's type graph (recursion cannot be
  inlined).

A table type reached from several distinct parent relations is given
one relation *per parent* (named ``Parent_Child``) so the relation
graph stays a tree; this stores the same tuples as a single shared
relation with a parent-type discriminator would, and keeps
delete/insert propagation identical, which is what the paper measures.

Inlined optional elements that are non-leaves get an extra *presence
flag* column (``..._present``) to distinguish "absent" from "present
with empty content" — the caveat discussed in Section 6.1.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MappingError
from repro.xmlmodel.dtd import CARD_MANY, CARD_OPTIONAL, Dtd
from repro.relational.schema import (
    FIELD_ATTRIBUTE,
    FIELD_PCDATA,
    FIELD_PRESENCE,
    FIELD_REFS,
    InlinedField,
    MappingSchema,
    Relation,
)


def derive_inlining_schema(dtd: Dtd, root: Optional[str] = None) -> MappingSchema:
    """Derive the Shared Inlining mapping for ``dtd``.

    ``root`` defaults to the DTD's unique root candidate (the element
    that never appears as a child).
    """
    if root is None:
        candidates = dtd.root_candidates()
        if len(candidates) != 1:
            raise MappingError(
                f"cannot infer a unique document root from the DTD "
                f"(candidates: {candidates}); pass root= explicitly"
            )
        root = candidates[0]
    if root not in dtd.elements:
        raise MappingError(f"root element {root!r} is not declared in the DTD")
    builder = _SchemaBuilder(dtd)
    return builder.build(root)


class _SchemaBuilder:
    def __init__(self, dtd: Dtd) -> None:
        self.dtd = dtd
        self.table_types = _table_types(dtd)
        self.schema = MappingSchema(kind="inlining", root="")
        self._used_names: set[str] = set()
        # (tag -> relation) for relations on the current construction path;
        # hitting one again means DTD recursion, resolved as a self-loop.
        self._stack: dict[str, Relation] = {}

    def build(self, root: str) -> MappingSchema:
        self.table_types.add(root)
        root_relation = self._build_relation(root, parent=None)
        self.schema.root = root_relation.name
        return self.schema

    # ------------------------------------------------------------------
    def _build_relation(
        self,
        tag: str,
        parent: Optional[Relation],
        parent_path: tuple[str, ...] = (),
    ) -> Relation:
        if tag in self._stack:
            # DTD recursion: reuse the ancestor relation as the child —
            # its parentId column then references its own (or a mutually
            # recursive) table.  Traversals must treat children as a DAG.
            existing = self._stack[tag]
            if parent is not None and existing.name not in parent.children:
                parent.children.append(existing.name)
            return existing
        name = self._relation_name(tag, parent)
        relation = Relation(
            name=name,
            tag=tag,
            parent=parent.name if parent else None,
            parent_path=parent_path,
        )
        self.schema.relations[name] = relation
        if parent is not None:
            parent.children.append(name)
        taken = {"id", "parentid"}  # lowercase: SQL names are case-insensitive
        self._stack[tag] = relation
        try:
            self._inline(relation, tag, path=(), taken=taken, optional=False)
        finally:
            del self._stack[tag]
        return relation

    def _relation_name(self, tag: str, parent: Optional[Relation]) -> str:
        if tag not in self._used_names:
            self._used_names.add(tag)
            return tag
        assert parent is not None, "root relation name collision"
        qualified = f"{parent.tag}_{tag}"
        suffix = 2
        name = qualified
        while name in self._used_names:
            name = f"{qualified}_{suffix}"
            suffix += 1
        self._used_names.add(name)
        return name

    def _inline(
        self,
        relation: Relation,
        tag: str,
        path: tuple[str, ...],
        taken: set[str],
        optional: bool,
    ) -> None:
        """Add the fields contributed by the element at ``path`` (of type
        ``tag``) and recurse into its inlinable children; spin off child
        relations for table-typed children."""
        decl = self.dtd.element(tag)
        content = decl.content
        if content.kind == "ANY":
            raise MappingError(
                f"element {tag!r} has ANY content, which the inlining mapping "
                "cannot represent"
            )
        attlist = self.dtd.attlist(tag)
        has_structure = bool(attlist) or content.kind in ("CHILDREN", "MIXED")
        if path and optional and has_structure:
            column = self._column_name(path + ("present",), taken)
            relation.fields.append(InlinedField(column, FIELD_PRESENCE, path))
        for attr_name, attr_decl in attlist.items():
            kind = FIELD_REFS if attr_decl.attr_type in ("IDREF", "IDREFS") else FIELD_ATTRIBUTE
            column = self._column_name(path + (attr_name,), taken)
            relation.fields.append(InlinedField(column, kind, path, name=attr_name))
        if content.kind in ("PCDATA", "MIXED"):
            # The anchor's own text column is named after its tag
            # (relation "author" stores its PCDATA in column "author").
            column = self._column_name(path if path else (tag,), taken)
            relation.fields.append(InlinedField(column, FIELD_PCDATA, path))
        if content.kind == "MIXED":
            # Mixed-content children always repeat: each becomes a relation.
            for child_tag in content.mixed_names:
                self._build_relation(child_tag, parent=relation, parent_path=path)
            return
        if content.kind != "CHILDREN":
            return
        cardinalities = content.child_cardinalities()
        for child_tag in content.child_names():
            cardinality = cardinalities[child_tag]
            if child_tag in self.table_types or cardinality == CARD_MANY:
                self.table_types.add(child_tag)
                self._build_relation(child_tag, parent=relation, parent_path=path)
            else:
                self._inline(
                    relation,
                    child_tag,
                    path + (child_tag,),
                    taken,
                    optional=optional or cardinality == CARD_OPTIONAL,
                )

    @staticmethod
    def _column_name(parts: tuple[str, ...], taken: set[str]) -> str:
        """Unique column name; SQL column names compare case-insensitively,
        so an XML attribute named ``ID`` must not collide with the system
        ``id`` column (it becomes ``ID_2``)."""
        base = "_".join(parts)
        name = base
        suffix = 2
        while name.lower() in taken:
            name = f"{base}_{suffix}"
            suffix += 1
        taken.add(name.lower())
        return name


def _table_types(dtd: Dtd) -> set[str]:
    """Element types that must get their own relation regardless of parent:
    those with a *many* occurrence anywhere, and those on a type-graph cycle."""
    table_types: set[str] = set()
    edges: dict[str, list[str]] = {}
    for name, decl in dtd.elements.items():
        children = decl.content.child_names()
        edges[name] = children
        cardinalities = decl.content.child_cardinalities()
        for child in children:
            if cardinalities.get(child) == CARD_MANY:
                table_types.add(child)
    table_types.update(_types_on_cycles(edges))
    return table_types


def _types_on_cycles(edges: dict[str, list[str]]) -> set[str]:
    """Nodes reachable from themselves in the type graph."""
    on_cycle: set[str] = set()
    for start in edges:
        stack = list(edges.get(start, ()))
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            if node == start:
                on_cycle.add(start)
                break
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
    return on_cycle
