"""An interval-indexed :class:`XmlStore` (the tentpole of the fourth
mapping).

``IntervalXmlStore`` keeps the ``node_interval`` side table
(:mod:`repro.relational.interval`) in sync across the store's whole
lifecycle and spends it on both paths:

* **reads** — relation-to-relation descendant steps in query
  translation lower to pre/post range predicates (the XPath-accelerator
  plan) instead of nested parentId subqueries, and reconstruction
  orders siblings by ``pre`` so positional inserts are honoured;
* **writes** — ``INSERT <x/> BEFORE/AFTER $y`` splices into the gapped
  ordinal space; the interval delete/insert strategies maintain the
  index with range statements; everything else is caught by an
  append-index / sweep pass after each update statement.

Resolved (pre, post) windows are baked into translated plans as
literals, so a renumbering — which moves ordinals — invalidates cached
plans exactly like a Rename does: the store bumps the plan-cache
generation whenever ``renumber_events`` advanced (reason ``renumber``
in the ``cache.plan.invalidations.*`` metrics).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import TranslationError
from repro.obs import get_registry
from repro.relational.delete_methods import IntervalRangeDelete
from repro.relational.insert_methods import IntervalCopyInsert
from repro.relational.interval import INTERVAL_TABLE, IntervalIndex
from repro.relational.plan_cache import contains_rename
from repro.relational.shredder import _Shredder, shred_element
from repro.relational.store import XmlStore
from repro.relational.update_translate import TupleBinding, UpdateTranslator
from repro.updates.operations import InsertBefore
from repro.xmlmodel.model import Element
from repro.xquery.ast import Query

#: A descendant step lowers to OR'd range predicates only while the
#: outer selection resolves to at most this many subtree windows;
#: larger selections fall back to the parentId-chain plan.
MAX_INTERVAL_WINDOWS = 16


class _IntervalTranslator(UpdateTranslator):
    """UpdateTranslator that splices positional inserts into the
    interval index (mirrors the ordered store's translator)."""

    def __init__(self, index: IntervalIndex, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._index = index

    def _execute_positional(self, env, target, operation) -> None:
        anchor = self._operand_binding(env, operation.anchor)
        content = operation.content
        if isinstance(anchor, TupleBinding) and isinstance(content, Element):
            self._positional_tuple_insert(anchor, content, operation)
            return
        super()._execute_positional(env, target, operation)

    def _positional_tuple_insert(self, anchor, content, operation) -> None:
        anchor_rows = self._selection_rows(anchor.selection)
        if not anchor_rows:
            return
        before = isinstance(operation, InsertBefore)
        anchor_relation = self.schema.relation(anchor.selection.relation)
        if anchor_relation.parent is None:
            raise TranslationError("cannot insert siblings of the document root")
        parent_relation = self.schema.relation(anchor_relation.parent)
        content_relation = None
        for child_name in parent_relation.children:
            child = self.schema.relation(child_name)
            if child.tag == content.name:
                content_relation = child
                break
        if content_relation is None:
            raise TranslationError(
                f"element <{content.name}> cannot be stored as a sibling of "
                f"{anchor_relation.name!r} tuples"
            )
        # Reserve interior room for the whole spliced subtree: the root
        # row is registered here; its descendant tuples are append-indexed
        # inside the root's interval by the store's post-statement sync.
        counter = _Shredder(self.schema, self.allocator)
        slots = 2 * counter._count_tuples(content, content_relation)
        for anchor_id, parent_id in anchor_rows:
            new_id = shred_element(
                self.db, self.schema, content_relation, content,
                parent_id, self.allocator,
            )
            if before:
                self._index.register_before(new_id, anchor_id, slots=slots)
            else:
                self._index.register_after(new_id, anchor_id, slots=slots)


class IntervalXmlStore(XmlStore):
    """XmlStore plus pre/post interval maintenance and range-scan axes."""

    def __init__(self, schema, *args, interval_gap: Optional[int] = None,
                 **kwargs) -> None:
        schema.intervals = True
        if interval_gap is not None:
            schema.interval_gap = interval_gap
        super().__init__(schema, *args, **kwargs)
        self._interval_index = IntervalIndex(self.db, self.schema)
        # Adopting a database whose tuples predate the index (or predate
        # this subclass) still yields a usable store.
        self._interval_index.ensure_populated()

    @property
    def interval(self) -> IntervalIndex:
        return self._interval_index

    @classmethod
    def from_dtd(
        cls,
        dtd,
        root=None,
        db=None,
        document_name: str = "doc.xml",
        strict_order: bool = False,
        interval_gap: Optional[int] = None,
    ) -> "IntervalXmlStore":
        from repro.relational.inlining import derive_inlining_schema
        from repro.xmlmodel.dtd import parse_dtd
        from repro.xmlmodel.policy import RefPolicy

        parsed = parse_dtd(dtd) if isinstance(dtd, str) else dtd
        schema = derive_inlining_schema(parsed, root=root)
        return cls(
            schema,
            db=db,
            document_name=document_name,
            policy=RefPolicy.from_dtd(parsed),
            strict_order=strict_order,
            interval_gap=interval_gap,
        )

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def execute(self, statement: Union[str, Query]) -> Optional[list[Element]]:
        query = self.parse(statement) if isinstance(statement, str) else statement
        if not query.is_update:
            # Pass the original text through so the plan cache keeps its key.
            return self.query(statement if isinstance(statement, str) else query)
        get_registry().counter("store.updates").inc()
        events_before = self.interval.renumber_events
        translator = _IntervalTranslator(
            self.interval,
            self.db,
            self.schema,
            self.allocator,
            self._delete_method,
            self._insert_method,
            strict_order=self.strict_order,
            document_name=self.document_name,
        )
        try:
            translator.execute_update(query)
        except Exception:
            self.db.rollback()
            raise
        self.warnings.extend(translator.warnings)
        self._sync_interval()
        if contains_rename(query):
            self.plan_cache.bump_generation("rename")
        self._bump_if_renumbered(events_before)
        return None

    def _sync_interval(self) -> None:
        """Bring the index back in line after an update statement:
        append-index spliced/copied tuples, sweep deleted ones."""
        self.interval.index_new()
        self.interval.sweep_deleted()

    def _bump_if_renumbered(self, events_before: int) -> None:
        if self.interval.renumber_events != events_before:
            # Renumbering moved ordinals that cached plans bake in as
            # literal window bounds — same staleness class as Rename.
            self.plan_cache.bump_generation("renumber")

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    # ``pre`` ordinals order the whole document, not just siblings, so
    # top-level query results are sorted by them too.
    _positions_global = True

    def _order_positions(self) -> dict[int, int]:
        return dict(self.db.query(f"SELECT id, pre FROM {INTERVAL_TABLE}"))

    def _interval_resolver(self):
        def resolve(relation, conditions, params, next_relation):
            where = " AND ".join(f"({c})" for c in conditions)
            sql = (
                f"SELECT n.pre, n.post FROM {INTERVAL_TABLE} n WHERE n.id IN "
                f'(SELECT id FROM "{relation.name}"'
                + (f" WHERE {where})" if where else ")")
            )
            windows = self.db.query(sql, params)
            if not windows or len(windows) > MAX_INTERVAL_WINDOWS:
                return None  # fall back to the parentId-chain plan
            predicate = " OR ".join("(pre > ? AND pre < ?)" for _ in windows)
            condition = (
                f'"{next_relation.name}".id IN '
                f"(SELECT id FROM {INTERVAL_TABLE} WHERE {predicate})"
            )
            window_params: list[int] = []
            for pre, post in windows:
                window_params.extend((pre, post))
            return [condition], window_params

        return resolve

    # ------------------------------------------------------------------
    # Direct (benchmark/service-facing) operations
    # ------------------------------------------------------------------
    def delete_subtrees(self, relation, where_sql="", params=()) -> None:
        events_before = self.interval.renumber_events
        super().delete_subtrees(relation, where_sql, params)
        if not isinstance(self._delete_method, IntervalRangeDelete):
            self.interval.sweep_deleted()
        self._bump_if_renumbered(events_before)

    def copy_subtrees(self, relation, where_sql, params, new_parent_id) -> None:
        events_before = self.interval.renumber_events
        super().copy_subtrees(relation, where_sql, params, new_parent_id)
        if not isinstance(self._insert_method, IntervalCopyInsert):
            self.interval.index_new()
        self._bump_if_renumbered(events_before)

    def interval_stats(self) -> dict:
        return {
            "nodes": self.interval.count(),
            "renumber_events": self.interval.renumber_events,
            "gap": self.interval.space.gap,
        }
