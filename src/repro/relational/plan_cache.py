"""Per-store cache of translated Sorted-Outer-Union plans.

Translating a FLWR statement — resolving the target path against the
inlining mapping, compiling WHERE predicates to SQL, and building the
outer-union CTE stack — is pure: the resulting
:class:`~repro.relational.outer_union.OuterUnionQuery` depends only on
the statement text, the mapping schema, and the reference policy.  A
production read workload repeats a small vocabulary of statement texts,
so each store keeps one bounded LRU (``cache.plan.*`` counters) mapping

    (schema generation, statement text)  ->  translated plan

The **generation** is the invalidation lever.  Restructuring updates —
Rename in particular — change which relation holds an element's tuples
(:func:`~repro.relational.update_translate` moves tuples between
same-shaped sibling relations), i.e. they change the element-to-relation
assignment that translation baked into the plan.  Plan reuse is only
provably sound while the translation inputs are untouched, so the store
bumps the generation after any update statement containing a Rename
(conservatively, anywhere in the operation tree, including Sub-Updates);
stale-generation entries simply miss and age out of the LRU.  Bumps are
counted as ``cache.plan.invalidations``.

Plans are shared across threads; that is safe because execution only
reads them (``sql`` string, ``params`` tuple, layout metadata).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.caching import LruCache
from repro.obs import get_registry
from repro.relational.outer_union import OuterUnionQuery
from repro.updates.operations import Rename, SubUpdate
from repro.xquery.ast import Query

#: Default bound per store; statement vocabularies are small, and each
#: entry is only a SQL string plus layout metadata.
DEFAULT_PLAN_CACHE_SIZE = 256


class PlanCache:
    """A bounded, generation-stamped cache of translated plans."""

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        self._cache = LruCache(capacity, "plan")
        self._lock = threading.Lock()
        self._generation = 0

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def get(self, statement: str) -> Optional[OuterUnionQuery]:
        return self._cache.get((self.generation, statement))

    def put(self, statement: str, plan: OuterUnionQuery) -> None:
        self._cache.put((self.generation, statement), plan)

    def bump_generation(self, reason: str = "rename") -> int:
        """Invalidate every cached plan (entries from older generations
        can no longer be returned); returns the new generation.

        ``reason`` labels the invalidation cause in the metrics —
        ``rename`` for restructuring updates, ``renumber`` for interval
        renumbering (plans may bake resolved pre/post windows in as
        literals, so moved ordinals make them stale the same way moved
        tuples do).
        """
        with self._lock:
            self._generation += 1
            generation = self._generation
        registry = get_registry()
        registry.counter("cache.plan.invalidations").inc()
        registry.counter(f"cache.plan.invalidations.{reason}").inc()
        return generation

    def clear(self) -> int:
        return self._cache.clear()

    def stats(self) -> dict:
        stats = self._cache.stats()
        stats["generation"] = self.generation
        return stats


def contains_rename(query: Query) -> bool:
    """True if any operation in the update (at any nesting depth) is a
    Rename — the restructuring case the plan cache must invalidate on."""
    if not query.is_update:
        return False
    stack = [op for clause in query.updates for op in clause.operations]
    while stack:
        operation = stack.pop()
        if isinstance(operation, Rename):
            return True
        if isinstance(operation, SubUpdate):
            stack.extend(operation.operations)
    return False
