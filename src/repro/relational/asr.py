"""Access Support Relations (Sections 5.3, 6.1.3, 6.2.3).

An ASR indexes one root-to-leaf *relation chain* of the mapping: it has
one id column per relation on the chain and one row per full path of
tuples, in left-complete extension (NULLs only at the bottom — a tuple
with no children still contributes a row ending in NULLs).  A ``mark``
column supports the paper's marking scheme for ASR-based deletes and
inserts.

A branching mapping (e.g. DBLP: publications have both authors and
citations) gets one ASR per root-to-leaf chain, managed together by
:class:`AsrManager`; a delete below a branch point touches every chain
that passes through the deleted relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import StorageError
from repro.relational.database import Database
from repro.relational.schema import MappingSchema, Relation


@dataclass
class AsrChain:
    """One ASR: the relation chain it indexes and its table name."""

    table: str
    relations: list[str]  # root relation first, leaf last

    def id_column(self, level: int) -> str:
        return f"id_{level}"

    def level_of(self, relation: str) -> Optional[int]:
        try:
            return self.relations.index(relation)
        except ValueError:
            return None

    @property
    def depth(self) -> int:
        return len(self.relations)


class AsrManager:
    """Builds and maintains the ASRs of a mapping."""

    def __init__(self, db: Database, schema: MappingSchema) -> None:
        self.db = db
        self.schema = schema
        self.chains: list[AsrChain] = [
            AsrChain(table=f"asr_{chain[-1]}", relations=chain)
            for chain in _leaf_chains(schema)
        ]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def create_all(self) -> None:
        """Create and populate every chain's ASR from the loaded data."""
        for chain in self.chains:
            self._create_chain(chain)

    def _create_chain(self, chain: AsrChain) -> None:
        columns = [f"{chain.id_column(level)} INTEGER" for level in range(chain.depth)]
        columns.append("mark INTEGER DEFAULT 0")
        self.db.execute(f'DROP TABLE IF EXISTS "{chain.table}"')
        self.db.execute(f'CREATE TABLE "{chain.table}" ({", ".join(columns)})')
        # Populate with LEFT JOINs for the left-complete extension.
        select_cols = ", ".join(f"t{level}.id" for level in range(chain.depth))
        joins = [f'"{chain.relations[0]}" t0']
        for level in range(1, chain.depth):
            joins.append(
                f'LEFT JOIN "{chain.relations[level]}" t{level} '
                f"ON t{level}.parentId = t{level - 1}.id"
            )
        id_cols = ", ".join(chain.id_column(level) for level in range(chain.depth))
        self.db.execute(
            f'INSERT INTO "{chain.table}" ({id_cols}) '
            f"SELECT {select_cols} FROM {' '.join(joins)}"
        )
        for level in range(chain.depth):
            self.db.execute(
                f'CREATE INDEX "idx_{chain.table}_{level}" '
                f'ON "{chain.table}" ({chain.id_column(level)})'
            )
        self.db.execute(
            f'CREATE INDEX "idx_{chain.table}_mark" ON "{chain.table}" (mark)'
        )

    def drop_all(self) -> None:
        for chain in self.chains:
            self.db.execute(f'DROP TABLE IF EXISTS "{chain.table}"')

    # ------------------------------------------------------------------
    # Queries through the ASR (Section 5.3)
    # ------------------------------------------------------------------
    def chain_through(self, relation: str) -> AsrChain:
        """Some chain passing through ``relation`` (the deepest-reaching)."""
        best: Optional[AsrChain] = None
        for chain in self.chains:
            if chain.level_of(relation) is not None:
                if best is None or chain.depth > best.depth:
                    best = chain
        if best is None:
            raise StorageError(f"no ASR chain passes through relation {relation!r}")
        return best

    def path_query_sql(
        self,
        start_relation: str,
        end_relation: str,
        end_where: str,
    ) -> str:
        """SQL returning ids of ``start_relation`` tuples that have a
        descendant in ``end_relation`` satisfying ``end_where`` (columns
        qualified with ``t``) — two joins instead of a chain of joins."""
        chain = self.chain_through(end_relation)
        start_level = chain.level_of(start_relation)
        end_level = chain.level_of(end_relation)
        if start_level is None or end_level is None or start_level > end_level:
            raise StorageError(
                f"no ASR path from {start_relation!r} down to {end_relation!r}"
            )
        return (
            f"SELECT DISTINCT a.{chain.id_column(start_level)} "
            f'FROM "{chain.table}" a JOIN "{end_relation}" t '
            f"ON t.id = a.{chain.id_column(end_level)} "
            f"WHERE {end_where}"
        )

    # ------------------------------------------------------------------
    # Maintenance pieces used by the ASR-based delete/insert strategies
    # ------------------------------------------------------------------
    def mark_subtrees(self, relation: str, id_select_sql: str, params: Sequence = ()) -> None:
        """Mark, in every chain through ``relation``, the paths whose
        ``relation``-level id is produced by ``id_select_sql``."""
        for chain in self.chains:
            level = chain.level_of(relation)
            if level is None:
                continue
            self.db.execute(
                f'UPDATE "{chain.table}" SET mark = 1 '
                f"WHERE {chain.id_column(level)} IN ({id_select_sql})",
                params,
            )

    def marked_descendant_ids_sql(self, relation: str, target_relation: str) -> Optional[str]:
        """SELECT of marked ids of ``target_relation`` at-or-below
        ``relation``'s level, or None if no chain relates them."""
        for chain in self.chains:
            level = chain.level_of(relation)
            target_level = chain.level_of(target_relation)
            if level is None or target_level is None or target_level < level:
                continue
            column = chain.id_column(target_level)
            return (
                f'SELECT DISTINCT {column} AS cid FROM "{chain.table}" '
                f"WHERE mark = 1 AND {column} IS NOT NULL"
            )
        return None

    def repair_left_completeness(self, relation: str) -> None:
        """Re-insert stub rows for parents whose every path was marked,
        keeping the left-complete property after the marked rows go."""
        for chain in self.chains:
            level = chain.level_of(relation)
            if level is None or level == 0:
                continue
            parent_column = chain.id_column(level - 1)
            prefix_cols = ", ".join(chain.id_column(i) for i in range(level))
            # Anti-join via NOT IN so the surviving-parents set is
            # materialised once rather than probed per marked row.
            self.db.execute(
                f'INSERT INTO "{chain.table}" ({prefix_cols}) '
                f"SELECT DISTINCT {prefix_cols} FROM \"{chain.table}\" m "
                f"WHERE m.mark = 1 AND m.{parent_column} IS NOT NULL "
                f"AND m.{parent_column} NOT IN (SELECT {parent_column} "
                f'FROM "{chain.table}" WHERE mark = 0 '
                f"AND {parent_column} IS NOT NULL)"
            )

    def delete_marked(self) -> None:
        for chain in self.chains:
            self.db.execute(f'DELETE FROM "{chain.table}" WHERE mark = 1')

    def unmark_all(self) -> None:
        for chain in self.chains:
            self.db.execute(f'UPDATE "{chain.table}" SET mark = 0 WHERE mark = 1')

    def insert_offset_paths(self, relation: str, offset: int, new_parent_id: int) -> None:
        """After an ASR-based copy: add paths for the copied subtree, with
        every id at or below ``relation``'s level shifted by ``offset``.

        The copied subtree hangs under ``new_parent_id``; ancestor id
        columns above the subtree root are rewritten accordingly using
        the target parent's own ancestor path."""
        for chain in self.chains:
            level = chain.level_of(relation)
            if level is None:
                continue
            if level == 0:
                raise StorageError("cannot copy the root relation's subtree")
            parent_column = chain.id_column(level - 1)
            columns = []
            for index in range(chain.depth):
                name = chain.id_column(index)
                if index < level - 1:
                    # A tuple has exactly one ancestor chain, so the target
                    # parent's ancestors come from any one of its rows.
                    columns.append(
                        f'(SELECT {name} FROM "{chain.table}" '
                        f"WHERE {parent_column} = {new_parent_id} AND mark = 0 "
                        f"LIMIT 1)"
                    )
                elif index == level - 1:
                    columns.append(str(new_parent_id))
                else:
                    columns.append(f"m.{name} + {offset}")
            id_cols = ", ".join(chain.id_column(i) for i in range(chain.depth))
            self.db.execute(
                f'INSERT INTO "{chain.table}" ({id_cols}) '
                f"SELECT {', '.join(columns)} "
                f'FROM "{chain.table}" m WHERE m.mark = 1'
            )


def _leaf_chains(schema: MappingSchema) -> list[list[str]]:
    """All root-to-leaf relation chains of the mapping."""
    chains: list[list[str]] = []

    def visit(name: str, path: list[str]) -> None:
        relation = schema.relation(name)
        if name in path:
            raise StorageError(
                f"ASRs cannot index a recursive mapping (relation {name!r})"
            )
        path = path + [name]
        if not relation.children:
            chains.append(path)
            return
        for child in relation.children:
            visit(child, path)

    visit(schema.root, [])
    return chains
