"""Snapshot-consistent read-only connection pool over an in-memory store.

The write path scales with group commit; before this module the read
path did not scale at all — every ``query`` serialised behind the one
per-store SQLite connection lock in
:class:`~repro.relational.database.Database`, so the threaded front
end gained nothing from concurrent clients on read-heavy workloads.

SQLite's in-memory databases are private to their connection, so the
pool cannot simply open N connections to the same ``:memory:`` store.
Instead each pooled reader holds its *own* connection carrying a
``Connection.deserialize``-loaded copy of the writer's last committed
image (the same page-level image checkpoints persist).  On acquisition
a reader compares its version stamp against the writer's commit
version and refreshes lazily — one ``serialize()`` per committed
version (cached and shared), one ``deserialize()`` per stale reader.
The C-level work (serialize, deserialize, and statement stepping) all
releases the GIL, so pooled readers execute genuinely in parallel on
separate connections, and every reader sees a *snapshot*: all writes
committed before its acquisition, none of the writer's uncommitted
in-flight state.

Quiesce (``pool.quiesce()``) blocks new acquisitions and waits for
in-flight readers to drain; recovery (``Database.load_bytes``) and
close run under it so an image swap never races an executing read.

Instrumentation: ``sql.pool.size`` / ``sql.pool.in_use`` gauges,
``sql.pool.wait_ms`` (time to get a reader) and ``sql.pool.refresh_ms``
(snapshot refresh cost) histograms, and ``sql.pool.reads`` /
``sql.pool.refreshes`` counters.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import Any, Optional, Sequence

from repro.errors import StorageError
from repro.obs import get_registry


class _Reader:
    """One pooled read-only connection plus its snapshot version stamp."""

    __slots__ = ("connection", "version")

    def __init__(self) -> None:
        self.connection = sqlite3.connect(":memory:", check_same_thread=False)
        self.version = -1  # never loaded; any writer version is newer

    def close(self) -> None:
        try:
            self.connection.close()
        except sqlite3.Error:
            pass


class ReaderPool:
    """A bounded pool of snapshot readers over one writer database.

    ``image_source`` is a callable returning ``(version, image_bytes)``
    for the writer's current committed state (the Database provides it;
    the image is cached per version so N stale readers cost one
    serialize).  The pool is created closed-over its size; ``close()``
    is idempotent and drains via quiesce.
    """

    def __init__(self, size: int, image_source) -> None:
        if size < 1:
            raise ValueError("reader pool size must be >= 1")
        self._size = size
        self._image_source = image_source
        self._cond = threading.Condition()
        self._idle: list[_Reader] = [_Reader() for _ in range(size)]
        self._in_use = 0
        self._quiesced = False
        self._closed = False
        self._waits = 0
        registry = get_registry()
        registry.gauge("sql.pool.size").set(size)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    def acquire(self, timeout: Optional[float] = None) -> "_LeasedReader":
        """Lease a refreshed snapshot reader (a context manager).

        Blocks while the pool is exhausted or quiesced; raises
        :class:`StorageError` on timeout or once the pool is closed.
        """
        started = time.monotonic()
        deadline = None if timeout is None else started + timeout
        with self._cond:
            while True:
                if self._closed:
                    raise StorageError("reader pool is closed")
                if not self._quiesced and self._idle:
                    reader = self._idle.pop()
                    self._in_use += 1
                    # Publish while still holding the lock: each set is
                    # then serialised with the ±1 it reports, so the
                    # gauge walks the true lease count instead of
                    # racing a concurrent release's stale read.
                    get_registry().gauge("sql.pool.in_use").set(self._in_use)
                    break
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._waits += 1
                        raise StorageError(
                            f"timed out waiting for a pooled reader "
                            f"({self._size} in use)"
                        )
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()
        registry = get_registry()
        registry.histogram("sql.pool.wait_ms").observe(
            (time.monotonic() - started) * 1000.0
        )
        registry.counter("sql.pool.reads").inc()
        try:
            self._refresh(reader)
        except BaseException:
            self._release(reader)
            raise
        return _LeasedReader(self, reader)

    def _refresh(self, reader: _Reader) -> None:
        """Load the writer's latest committed image if the reader is stale."""
        version, image = self._image_source()
        if reader.version == version:
            return
        started = time.monotonic()
        try:
            reader.connection.deserialize(image)
        except sqlite3.Error as error:
            raise StorageError(f"cannot refresh pooled reader: {error}") from error
        reader.version = version
        registry = get_registry()
        registry.counter("sql.pool.refreshes").inc()
        registry.histogram("sql.pool.refresh_ms").observe(
            (time.monotonic() - started) * 1000.0
        )

    def _release(self, reader: _Reader) -> None:
        with self._cond:
            self._in_use -= 1
            # Inside the lock, like acquire: re-reading `_in_use` after
            # releasing raced concurrent acquires into publishing stale
            # (negative-clamped) values out of order.
            get_registry().gauge("sql.pool.in_use").set(self._in_use)
            if self._closed:
                reader.close()
            else:
                self._idle.append(reader)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def query(
        self, sql: str, params: Sequence[Any] = (), timeout: Optional[float] = None
    ) -> list[tuple]:
        """Run one read-only statement on a pooled snapshot reader."""
        with self.acquire(timeout) as connection:
            try:
                return connection.execute(sql, params).fetchall()
            except sqlite3.Error as error:
                raise StorageError(
                    f"SQL failed on pooled reader: {error}\n  statement: {sql}"
                ) from error

    # ------------------------------------------------------------------
    def quiesce(self, timeout: Optional[float] = None) -> "_Quiesce":
        """Block new acquisitions and wait for in-flight readers to drain.

        Returns a context manager; recovery image swaps run inside it.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._quiesced:
                # One quiescer at a time; later ones queue here.
                if not self._wait(deadline):
                    raise StorageError("timed out waiting to quiesce reader pool")
            self._quiesced = True
            while self._in_use:
                if not self._wait(deadline):
                    self._quiesced = False
                    self._cond.notify_all()
                    raise StorageError(
                        "timed out draining in-flight pooled readers"
                    )
        return _Quiesce(self)

    def _wait(self, deadline: Optional[float]) -> bool:
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        self._cond.wait(remaining)
        return True

    def _unquiesce(self) -> None:
        with self._cond:
            self._quiesced = False
            self._cond.notify_all()

    def invalidate(self) -> None:
        """Force every idle reader to refresh on its next acquisition."""
        with self._cond:
            for reader in self._idle:
                reader.version = -1

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            for reader in self._idle:
                reader.close()
            self._idle.clear()
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._cond:
            return {
                "size": self._size,
                "in_use": self._in_use,
                "idle": len(self._idle),
                "quiesced": self._quiesced,
                "closed": self._closed,
            }


class _LeasedReader:
    """Context manager handing out the leased connection."""

    __slots__ = ("_pool", "_reader")

    def __init__(self, pool: ReaderPool, reader: _Reader) -> None:
        self._pool = pool
        self._reader = reader

    def __enter__(self) -> sqlite3.Connection:
        return self._reader.connection

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._pool._release(self._reader)


class _Quiesce:
    __slots__ = ("_pool",)

    def __init__(self, pool: ReaderPool) -> None:
        self._pool = pool

    def __enter__(self) -> "ReaderPool":
        return self._pool

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._pool._unquiesce()
