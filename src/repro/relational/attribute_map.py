"""The Attribute mapping (Florescu & Kossmann [10], summarised in §5.1).

Like the Edge mapping, but horizontally partitioned: one binary table
per distinct tag or attribute name.  Lookups by name touch a small
table, but reconstruction still pays a join per step and the number of
tables grows with the vocabulary.
"""

from __future__ import annotations

import re
from typing import Optional, Sequence

from repro.errors import MappingError
from repro.relational.database import Database
from repro.relational.idgen import IdAllocator
from repro.xmlmodel.model import Document, Element, Text

_TEXT_TABLE = "att_pcdata"
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.-]*$")


def _table_for(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MappingError(f"cannot map name {name!r} to an attribute table")
    return f"att_{name}"


class AttributeMapping:
    """Load, query, and update documents stored one-table-per-name."""

    def __init__(self, db: Optional[Database] = None) -> None:
        self.db = db or Database()
        self.allocator = IdAllocator(self.db)
        self._tables: set[str] = set()
        self._ensure_table(_TEXT_TABLE)

    def _ensure_table(self, table: str) -> None:
        if table in self._tables:
            return
        self.db.execute(
            f'CREATE TABLE IF NOT EXISTS "{table}" ('
            "id INTEGER, parentId INTEGER, kind TEXT, value TEXT, ordinal INTEGER)"
        )
        self.db.execute(
            f'CREATE INDEX IF NOT EXISTS "idx_{table}_parent" ON "{table}" (parentId)'
        )
        self._tables.add(table)

    @property
    def tables(self) -> list[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, document: Document) -> int:
        rows: dict[str, list[tuple]] = {}
        total = _count_objects(document.root)
        next_id = self.allocator.reserve(total)

        def add(table: str, row: tuple) -> None:
            self._ensure_table(table)
            rows.setdefault(table, []).append(row)

        def emit(element: Element, parent_id: Optional[int]) -> int:
            nonlocal next_id
            element_id = next_id
            next_id += 1
            add(_table_for(element.name), (element_id, parent_id, "elem", None, 0))
            for attribute in element.attributes.values():
                add(
                    _table_for(attribute.name),
                    (next_id, element_id, "attr", attribute.value, 0),
                )
                next_id += 1
            for reference in element.references.values():
                for position, entry in enumerate(reference.entries):
                    add(
                        _table_for(reference.name),
                        (next_id, element_id, "ref", entry.target, position),
                    )
                    next_id += 1
            ordinal = 0
            for child in element.children:
                if isinstance(child, Text):
                    add(_TEXT_TABLE, (next_id, element_id, "text", child.value, ordinal))
                    next_id += 1
                else:
                    emit(child, element_id)
                ordinal += 1
            return element_id

        root_id = emit(document.root, None)
        for table, table_rows in rows.items():
            self.db.executemany(
                f'INSERT INTO "{table}" (id, parentId, kind, value, ordinal) '
                "VALUES (?, ?, ?, ?, ?)",
                table_rows,
            )
        self.db.commit()
        return root_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def element_ids(self, name: str) -> list[int]:
        table = _table_for(name)
        if table not in self._tables:
            return []
        return [
            row[0]
            for row in self.db.query(
                f'SELECT id FROM "{table}" WHERE kind = ?', ("elem",)
            )
        ]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def delete_subtrees(self, ids: Sequence[int]) -> None:
        """Cascading delete: each level's orphan sweep must now visit
        *every* table — the fragmentation cost the paper warns about."""
        if not ids:
            return
        placeholders = ", ".join("?" for _ in ids)
        union_ids = " UNION ALL ".join(
            f'SELECT id FROM "{table}"' for table in self.tables
        )
        for table in self.tables:
            self.db.execute(
                f'DELETE FROM "{table}" WHERE id IN ({placeholders})', tuple(ids)
            )
        while True:
            removed = 0
            for table in self.tables:
                cursor = self.db.execute(
                    f'DELETE FROM "{table}" WHERE parentId IS NOT NULL '
                    f"AND parentId NOT IN ({union_ids})"
                )
                removed += cursor.rowcount
            if not removed:
                return

    def count(self) -> int:
        return sum(
            self.db.query_one(f'SELECT COUNT(*) FROM "{table}"')[0]
            for table in self.tables
        )


def _count_objects(element: Element) -> int:
    total = 1 + len(element.attributes)
    for reference in element.references.values():
        total += len(reference.entries)
    for child in element.children:
        if isinstance(child, Text):
            total += 1
        else:
            total += _count_objects(child)
    return total
