"""XML-to-relational storage and the paper's update strategies (Sections 5-6).

Layers, bottom up:

* :mod:`~repro.relational.database` — SQLite wrapper with statement
  counting and per-statement trigger emulation;
* :mod:`~repro.relational.schema`, :mod:`~repro.relational.inlining`,
  :mod:`~repro.relational.edge`, :mod:`~repro.relational.attribute_map`
  — mapping schemas (Shared Inlining is the primary one);
* :mod:`~repro.relational.shredder` — documents to tuples;
* :mod:`~repro.relational.outer_union` — Sorted Outer Union queries and
  the XML tagger;
* :mod:`~repro.relational.asr` — Access Support Relations;
* :mod:`~repro.relational.delete_methods`,
  :mod:`~repro.relational.insert_methods` — the strategy implementations
  the paper benchmarks;
* :mod:`~repro.relational.store` — the :class:`XmlStore` facade tying
  everything together (load documents, run XQuery queries and updates).
"""

from repro.relational.database import Database, StatementCounts
from repro.relational.idgen import IdAllocator
from repro.relational.inlining import derive_inlining_schema
from repro.relational.schema import InlinedField, MappingSchema, Relation
from repro.relational.shredder import create_schema, shred_document

__all__ = [
    "Database",
    "IdAllocator",
    "InlinedField",
    "MappingSchema",
    "Relation",
    "StatementCounts",
    "create_schema",
    "derive_inlining_schema",
    "shred_document",
]
