"""Thin SQLite wrapper: statement counting, triggers, transactions.

The paper substrate was IBM DB2 7.1 via JDBC; we use the stdlib
``sqlite3`` (see DESIGN.md for why the substitution preserves the
comparisons).  The wrapper adds what the experiments need:

* **statement counting** — the paper repeatedly attributes performance
  differences to the number of SQL statements issued, so every
  ``execute`` bumps a counter, split into client statements and
  emulated-trigger statements;
* **per-statement trigger emulation** — SQLite only has ``FOR EACH
  ROW`` triggers.  DB2-style ``FOR EACH STATEMENT`` delete triggers are
  emulated by registering sweep statements that the wrapper runs after
  a client ``DELETE`` on the triggering table, transitively, inside the
  same transaction (exactly the orphan-sweep SQL a DB2 trigger body
  would contain);
* an in-memory default (the paper's experiments run with all data in
  memory);
* **thread safety** — the update service applies batches from a
  group-commit thread while client threads read, so the wrapper
  serialises all connection access behind a reentrant lock (and opens
  the connection with ``check_same_thread=False``; SQLite itself is
  compiled threadsafe, the lock guarantees one statement at a time).
"""

from __future__ import annotations

import sqlite3
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.errors import StorageError
from repro.obs import get_registry, span


@dataclass
class StatementCounts:
    """Counters for issued SQL, split by origin.

    Increments go through :meth:`bump_client` / :meth:`bump_trigger` so
    concurrent submitters never lose a count; the attributes stay plain
    integers for cheap reads.  Every bump is mirrored into the process
    metrics registry (``sql.statements.client`` /
    ``sql.statements.trigger``), which is the source benchmarks and
    ``python -m repro stats`` report from; the instance-level fields
    remain as a per-connection view that :meth:`reset` can zero without
    disturbing other connections.
    """

    client: int = 0  # statements the application issued
    trigger_emulation: int = 0  # statements run by the per-statement emulation
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump_client(self, count: int = 1) -> None:
        with self._lock:
            self.client += count
        get_registry().counter("sql.statements.client").inc(count)

    def bump_trigger(self, count: int = 1) -> None:
        with self._lock:
            self.trigger_emulation += count
        get_registry().counter("sql.statements.trigger").inc(count)

    def reset(self) -> None:
        with self._lock:
            self.client = 0
            self.trigger_emulation = 0

    @property
    def total(self) -> int:
        return self.client + self.trigger_emulation


class Database:
    """A SQLite connection with counting and trigger emulation."""

    def __init__(self, path: str = ":memory:", check_same_thread: bool = False) -> None:
        self._connection = sqlite3.connect(path, check_same_thread=check_same_thread)
        self._connection.execute("PRAGMA foreign_keys = OFF")
        self._lock = threading.RLock()
        self._closed = False
        self.counts = StatementCounts()
        # table name -> list of (sql, params) run after a client DELETE on it.
        self._statement_triggers: dict[str, list[str]] = {}

    @property
    def closed(self) -> bool:
        return self._closed

    def _checked_connection(self) -> sqlite3.Connection:
        if self._closed:
            raise StorageError("database connection is closed")
        return self._connection

    # ------------------------------------------------------------------
    # Core execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()) -> sqlite3.Cursor:
        """Run one client statement (counted), firing emulated triggers."""
        with self._lock, span("sql.execute"):
            self.counts.bump_client()
            try:
                cursor = self._checked_connection().execute(sql, params)
            except sqlite3.Error as error:
                raise StorageError(f"SQL failed: {error}\n  statement: {sql}") from error
            self._fire_statement_triggers(sql)
            return cursor

    def executemany(self, sql: str, rows: Iterable[Sequence[Any]]) -> sqlite3.Cursor:
        """Run one statement against many parameter rows (counted once per
        row, matching how a JDBC batch still ships per-row work)."""
        rows = list(rows)
        with self._lock, span("sql.execute", rows=len(rows)):
            self.counts.bump_client(len(rows))
            try:
                cursor = self._checked_connection().executemany(sql, rows)
            except sqlite3.Error as error:
                raise StorageError(f"SQL failed: {error}\n  statement: {sql}") from error
            return cursor

    def executescript(self, script: str) -> None:
        """Run DDL; counted as a single client statement."""
        with self._lock:
            self.counts.bump_client()
            try:
                self._checked_connection().executescript(script)
            except sqlite3.Error as error:
                raise StorageError(f"SQL script failed: {error}") from error

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        with self._lock:
            return self.execute(sql, params).fetchall()

    def query_one(self, sql: str, params: Sequence[Any] = ()) -> Optional[tuple]:
        with self._lock:
            rows = self.execute(sql, params).fetchmany(2)
        if not rows:
            return None
        if len(rows) > 1:
            raise StorageError(f"expected at most one row from: {sql}")
        return rows[0]

    def clone(self) -> "Database":
        """Copy the full database into a fresh in-memory instance.

        Uses SQLite's backup API (page-level copy), so a loaded store can
        be snapshotted once and restored per benchmark run far faster
        than reloading.  Emulated statement-trigger registrations are
        wrapper state and are copied too; counters start at zero.
        """
        clone = Database()
        with self._lock:
            connection = self._checked_connection()
            connection.commit()
            connection.backup(clone._connection)
            clone._statement_triggers = dict(self._statement_triggers)
        return clone

    def dump_bytes(self) -> bytes:
        """The whole database as a SQLite image (``Connection.serialize``).

        Used by checkpoint snapshots: unlike re-serialising to XML, the
        image preserves tuple ids, so relational operations logged after
        the checkpoint replay against the same rows they named.
        """
        with self._lock:
            connection = self._checked_connection()
            connection.commit()
            return connection.serialize()

    def load_bytes(self, data: bytes) -> None:
        """Replace the database contents with a ``dump_bytes`` image."""
        with self._lock:
            try:
                self._checked_connection().deserialize(data)
            except sqlite3.Error as error:
                raise StorageError(f"cannot load database image: {error}") from error

    def commit(self) -> None:
        with self._lock:
            self._checked_connection().commit()

    def rollback(self) -> None:
        with self._lock:
            self._checked_connection().rollback()

    def close(self) -> None:
        """Close the connection; safe to call more than once."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._connection.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Per-statement trigger emulation
    # ------------------------------------------------------------------
    def register_statement_trigger(self, table: str, sweep_sql: list[str]) -> None:
        """Register DELETE-trigger bodies fired after client deletes on
        ``table``.  Each body statement is itself treated as a delete on
        its own target table, so registered triggers chain (as DB2
        statement triggers would)."""
        self._statement_triggers[table.lower()] = list(sweep_sql)

    def clear_statement_triggers(self) -> None:
        self._statement_triggers.clear()

    def _fire_statement_triggers(self, sql: str) -> None:
        if not self._statement_triggers:
            return
        table = _delete_target(sql)
        if table is None:
            return
        self._run_trigger_chain(table)

    def _run_trigger_chain(self, table: str) -> None:
        for sweep_sql in self._statement_triggers.get(table.lower(), ()):
            self.counts.bump_trigger()
            try:
                cursor = self._connection.execute(sweep_sql)
            except sqlite3.Error as error:
                raise StorageError(
                    f"emulated trigger failed: {error}\n  statement: {sweep_sql}"
                ) from error
            chained = _delete_target(sweep_sql)
            # Chain into the swept table's own trigger.  Stopping when a
            # sweep removed nothing bounds recursive schemas (a real DB2
            # statement trigger on a self-referencing table would not
            # terminate either; cascading delete stops the same way).
            if chained is not None and cursor.rowcount:
                self._run_trigger_chain(chained)


def _delete_target(sql: str) -> Optional[str]:
    """Table name if ``sql`` is a DELETE statement, else None."""
    stripped = sql.lstrip().lower()
    if not stripped.startswith("delete"):
        return None
    parts = stripped.split()
    try:
        from_index = parts.index("from")
    except ValueError:
        return None
    if from_index + 1 >= len(parts):
        return None
    return parts[from_index + 1].strip('";')
