"""Thin SQLite wrapper: statement counting, triggers, transactions.

The paper substrate was IBM DB2 7.1 via JDBC; we use the stdlib
``sqlite3`` (see DESIGN.md for why the substitution preserves the
comparisons).  The wrapper adds what the experiments need:

* **statement counting** — the paper repeatedly attributes performance
  differences to the number of SQL statements issued, so every
  ``execute`` bumps a counter, split into client statements and
  emulated-trigger statements;
* **per-statement trigger emulation** — SQLite only has ``FOR EACH
  ROW`` triggers.  DB2-style ``FOR EACH STATEMENT`` delete triggers are
  emulated by registering sweep statements that the wrapper runs after
  a client ``DELETE`` on the triggering table, transitively, inside the
  same transaction (exactly the orphan-sweep SQL a DB2 trigger body
  would contain);
* an in-memory default (the paper's experiments run with all data in
  memory);
* **thread safety** — the update service applies batches from a
  group-commit thread while client threads read, so the wrapper
  serialises all connection access behind a reentrant lock (and opens
  the connection with ``check_same_thread=False``; SQLite itself is
  compiled threadsafe, the lock guarantees one statement at a time).
  Contended acquisitions are recorded in the ``sql.lock.wait_ms``
  histogram, which is how the benchmarks *prove* the single-connection
  lock was the read-path bottleneck;
* an optional **read-only reader pool**
  (:class:`~repro.relational.pool.ReaderPool`) — N snapshot-consistent
  connections carrying ``serialize()``-images of the last committed
  state, so concurrent reads no longer serialise behind the writer's
  lock.  Writers keep the single counted connection; the pool is
  enabled per store by :meth:`Database.configure_pool` (the update
  service does this from its ``readers`` knob).
"""

from __future__ import annotations

import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.errors import StorageError
from repro.obs import get_registry, span
from repro.relational.pool import ReaderPool


@dataclass
class StatementCounts:
    """Counters for issued SQL, split by origin.

    Increments go through :meth:`bump_client` / :meth:`bump_trigger` so
    concurrent submitters never lose a count; the attributes stay plain
    integers for cheap reads.  Every bump is mirrored into the process
    metrics registry (``sql.statements.client`` /
    ``sql.statements.trigger``), which is the source benchmarks and
    ``python -m repro stats`` report from; the instance-level fields
    remain as a per-connection view that :meth:`reset` can zero without
    disturbing other connections.
    """

    client: int = 0  # statements the application issued
    trigger_emulation: int = 0  # statements run by the per-statement emulation
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump_client(self, count: int = 1) -> None:
        with self._lock:
            self.client += count
        get_registry().counter("sql.statements.client").inc(count)

    def bump_trigger(self, count: int = 1) -> None:
        with self._lock:
            self.trigger_emulation += count
        get_registry().counter("sql.statements.trigger").inc(count)

    def reset(self) -> None:
        with self._lock:
            self.client = 0
            self.trigger_emulation = 0

    @property
    def total(self) -> int:
        return self.client + self.trigger_emulation


class _WriterTransactionOpen(Exception):
    """Internal: the writer has an uncommitted transaction, so a pooled
    snapshot cannot be taken right now (the caller falls back to the
    locked writer-path read, which sees the in-flight state — the
    pre-pool semantics)."""


class Database:
    """A SQLite connection with counting and trigger emulation."""

    def __init__(self, path: str = ":memory:", check_same_thread: bool = False) -> None:
        self._connection = sqlite3.connect(path, check_same_thread=check_same_thread)
        self._connection.execute("PRAGMA foreign_keys = OFF")
        self._lock = threading.RLock()
        self._closed = False
        self.counts = StatementCounts()
        # table name -> list of (sql, params) run after a client DELETE on it.
        self._statement_triggers: dict[str, list[str]] = {}
        # Committed-state versioning for the reader pool: any statement
        # that may mutate bumps `_version`; `_current_image` serialises
        # at most once per version and shares the bytes across readers.
        self._version = 0
        self._image: Optional[bytes] = None
        self._image_version = -1
        self._pool: Optional[ReaderPool] = None

    @property
    def closed(self) -> bool:
        return self._closed

    def _checked_connection(self) -> sqlite3.Connection:
        if self._closed:
            raise StorageError("database connection is closed")
        return self._connection

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """The connection lock, with contended waits recorded in the
        ``sql.lock.wait_ms`` histogram.  The uncontended (and reentrant)
        fast path records nothing, so hot loops stay cheap."""
        if not self._lock.acquire(blocking=False):
            started = time.monotonic()
            self._lock.acquire()
            get_registry().histogram("sql.lock.wait_ms").observe(
                (time.monotonic() - started) * 1000.0
            )
        try:
            yield
        finally:
            self._lock.release()

    def _mark_mutated(self, sql: str) -> None:
        """Bump the committed-state version unless ``sql`` is a plain
        SELECT.  Conservative: anything that *might* write (including
        WITH-prefixed statements, DDL, PRAGMA) invalidates reader
        snapshots; a spurious bump costs one refresh, a missed bump
        would serve stale data."""
        if not sql.lstrip()[:6].lower().startswith("select"):
            self._version += 1

    # ------------------------------------------------------------------
    # Core execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()) -> sqlite3.Cursor:
        """Run one client statement (counted), firing emulated triggers."""
        with self._locked(), span("sql.execute"):
            self.counts.bump_client()
            self._mark_mutated(sql)
            try:
                cursor = self._checked_connection().execute(sql, params)
            except sqlite3.Error as error:
                raise StorageError(f"SQL failed: {error}\n  statement: {sql}") from error
            self._fire_statement_triggers(sql)
            return cursor

    def executemany(self, sql: str, rows: Iterable[Sequence[Any]]) -> sqlite3.Cursor:
        """Run one statement against many parameter rows (counted once per
        row, matching how a JDBC batch still ships per-row work)."""
        rows = list(rows)
        with self._locked(), span("sql.execute", rows=len(rows)):
            self.counts.bump_client(len(rows))
            self._mark_mutated(sql)
            try:
                cursor = self._checked_connection().executemany(sql, rows)
            except sqlite3.Error as error:
                raise StorageError(f"SQL failed: {error}\n  statement: {sql}") from error
            return cursor

    def executescript(self, script: str) -> None:
        """Run DDL; counted as a single client statement."""
        with self._locked():
            self.counts.bump_client()
            self._version += 1
            try:
                self._checked_connection().executescript(script)
            except sqlite3.Error as error:
                raise StorageError(f"SQL script failed: {error}") from error

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        with self._locked():
            return self.execute(sql, params).fetchall()

    def query_one(self, sql: str, params: Sequence[Any] = ()) -> Optional[tuple]:
        with self._locked():
            rows = self.execute(sql, params).fetchmany(2)
        if not rows:
            return None
        if len(rows) > 1:
            raise StorageError(f"expected at most one row from: {sql}")
        return rows[0]

    # ------------------------------------------------------------------
    # Pooled reads
    # ------------------------------------------------------------------
    def configure_pool(self, readers: int) -> None:
        """Enable (or resize/disable) the snapshot reader pool.

        ``readers`` of 0 disables pooling: :meth:`read_query` falls back
        to the locked writer connection (the pre-pool behaviour).
        Reconfiguring closes the previous pool after draining it.
        """
        if readers < 0:
            raise ValueError("readers must be >= 0")
        previous = self._pool
        self._pool = (
            ReaderPool(readers, self._current_image) if readers else None
        )
        if previous is not None:
            previous.close()

    @property
    def pool(self) -> Optional[ReaderPool]:
        return self._pool

    def pool_stats(self) -> Optional[dict]:
        """Pool snapshot for ``stats()`` surfaces; None when disabled."""
        return self._pool.stats() if self._pool is not None else None

    def _current_image(self) -> tuple[int, bytes]:
        """(version, bytes) of the writer's current committed state.

        Serialises at most once per version; raises
        :class:`_WriterTransactionOpen` when the writer holds an
        uncommitted transaction (snapshotting then would either publish
        uncommitted state or commit it out from under the writer).
        """
        with self._locked():
            connection = self._checked_connection()
            if connection.in_transaction:
                raise _WriterTransactionOpen()
            if self._image_version != self._version:
                self._image = connection.serialize()
                self._image_version = self._version
            assert self._image is not None
            return self._image_version, self._image

    def read_query(
        self, sql: str, params: Sequence[Any] = (), timeout: Optional[float] = None
    ) -> list[tuple]:
        """Run one read-only statement, concurrently when pooled.

        With a configured pool this executes on a snapshot reader —
        concurrent ``read_query`` calls run genuinely in parallel and
        never touch the writer lock (beyond a per-version image
        refresh).  Without a pool, or while the writer holds an open
        transaction, it falls back to the locked :meth:`query` path, so
        results always reflect every statement issued so far.
        """
        pool = self._pool
        if pool is not None and not self._closed:
            try:
                with span("sql.read"):
                    rows = pool.query(sql, params, timeout=timeout)
            except _WriterTransactionOpen:
                pass  # uncommitted writer state must stay visible to reads
            else:
                self.counts.bump_client()
                return rows
        return self.query(sql, params)

    # ------------------------------------------------------------------
    def clone(self) -> "Database":
        """Copy the full database into a fresh in-memory instance.

        Uses SQLite's backup API (page-level copy), so a loaded store can
        be snapshotted once and restored per benchmark run far faster
        than reloading.  Emulated statement-trigger registrations are
        wrapper state and are copied too; counters start at zero and the
        clone's reader pool starts unconfigured.
        """
        clone = Database()
        with self._locked():
            connection = self._checked_connection()
            connection.commit()
            connection.backup(clone._connection)
            clone._statement_triggers = dict(self._statement_triggers)
        return clone

    def dump_bytes(self) -> bytes:
        """The whole database as a SQLite image (``Connection.serialize``).

        Used by checkpoint snapshots: unlike re-serialising to XML, the
        image preserves tuple ids, so relational operations logged after
        the checkpoint replay against the same rows they named.
        """
        with self._locked():
            connection = self._checked_connection()
            connection.commit()
            return connection.serialize()

    def committed_image(self) -> bytes:
        """The last *committed* state as a SQLite image.

        The fuzzy checkpoint's capture hook: shares the reader pool's
        per-version image cache (one ``serialize()`` per commit, reused
        across captures and reader refreshes) and — unlike
        :meth:`dump_bytes` — never issues a commit itself.  If the
        writer holds an open transaction (impossible under the
        service's per-document read lock, where the committer's apply
        is excluded, but possible for standalone callers) it falls back
        to :meth:`dump_bytes`, which commits and serialises.
        """
        try:
            _version, image = self._current_image()
        except _WriterTransactionOpen:
            return self.dump_bytes()
        return image

    def load_bytes(self, data: bytes) -> None:
        """Replace the database contents with a ``dump_bytes`` image.

        Quiesces the reader pool first (recovery must never swap the
        image out from under an executing read), and invalidates every
        pooled snapshot so the next read sees the restored state.
        """
        pool = self._pool
        if pool is not None:
            with pool.quiesce():
                self._load_bytes_locked(data)
                pool.invalidate()
        else:
            self._load_bytes_locked(data)

    def _load_bytes_locked(self, data: bytes) -> None:
        with self._locked():
            self._version += 1
            try:
                self._checked_connection().deserialize(data)
            except sqlite3.Error as error:
                raise StorageError(f"cannot load database image: {error}") from error

    def commit(self) -> None:
        with self._locked():
            self._checked_connection().commit()

    def rollback(self) -> None:
        with self._locked():
            self._checked_connection().rollback()

    def close(self) -> None:
        """Close the connection (and pool); safe to call more than once."""
        pool = self._pool
        if pool is not None:
            pool.close()
        with self._locked():
            if self._closed:
                return
            self._closed = True
            self._connection.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Per-statement trigger emulation
    # ------------------------------------------------------------------
    def register_statement_trigger(self, table: str, sweep_sql: list[str]) -> None:
        """Register DELETE-trigger bodies fired after client deletes on
        ``table``.  Each body statement is itself treated as a delete on
        its own target table, so registered triggers chain (as DB2
        statement triggers would)."""
        self._statement_triggers[table.lower()] = list(sweep_sql)

    def clear_statement_triggers(self) -> None:
        self._statement_triggers.clear()

    def _fire_statement_triggers(self, sql: str) -> None:
        if not self._statement_triggers:
            return
        table = _delete_target(sql)
        if table is None:
            return
        self._run_trigger_chain(table)

    def _run_trigger_chain(self, table: str) -> None:
        for sweep_sql in self._statement_triggers.get(table.lower(), ()):
            self.counts.bump_trigger()
            try:
                cursor = self._connection.execute(sweep_sql)
            except sqlite3.Error as error:
                raise StorageError(
                    f"emulated trigger failed: {error}\n  statement: {sweep_sql}"
                ) from error
            chained = _delete_target(sweep_sql)
            # Chain into the swept table's own trigger.  Stopping when a
            # sweep removed nothing bounds recursive schemas (a real DB2
            # statement trigger on a self-referencing table would not
            # terminate either; cascading delete stops the same way).
            if chained is not None and cursor.rowcount:
                self._run_trigger_chain(chained)


def _delete_target(sql: str) -> Optional[str]:
    """Table name if ``sql`` is a DELETE statement, else None."""
    stripped = sql.lstrip().lower()
    if not stripped.startswith("delete"):
        return None
    parts = stripped.split()
    try:
        from_index = parts.index("from")
    except ValueError:
        return None
    if from_index + 1 >= len(parts):
        return None
    return parts[from_index + 1].strip('";')
