"""Thin SQLite wrapper: statement counting, triggers, transactions.

The paper substrate was IBM DB2 7.1 via JDBC; we use the stdlib
``sqlite3`` (see DESIGN.md for why the substitution preserves the
comparisons).  The wrapper adds what the experiments need:

* **statement counting** — the paper repeatedly attributes performance
  differences to the number of SQL statements issued, so every
  ``execute`` bumps a counter, split into client statements and
  emulated-trigger statements;
* **per-statement trigger emulation** — SQLite only has ``FOR EACH
  ROW`` triggers.  DB2-style ``FOR EACH STATEMENT`` delete triggers are
  emulated by registering sweep statements that the wrapper runs after
  a client ``DELETE`` on the triggering table, transitively, inside the
  same transaction (exactly the orphan-sweep SQL a DB2 trigger body
  would contain);
* an in-memory default (the paper's experiments run with all data in
  memory).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.errors import StorageError


@dataclass
class StatementCounts:
    """Counters for issued SQL, split by origin."""

    client: int = 0  # statements the application issued
    trigger_emulation: int = 0  # statements run by the per-statement emulation

    def reset(self) -> None:
        self.client = 0
        self.trigger_emulation = 0

    @property
    def total(self) -> int:
        return self.client + self.trigger_emulation


class Database:
    """A SQLite connection with counting and trigger emulation."""

    def __init__(self, path: str = ":memory:") -> None:
        self._connection = sqlite3.connect(path)
        self._connection.execute("PRAGMA foreign_keys = OFF")
        self.counts = StatementCounts()
        # table name -> list of (sql, params) run after a client DELETE on it.
        self._statement_triggers: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # Core execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()) -> sqlite3.Cursor:
        """Run one client statement (counted), firing emulated triggers."""
        self.counts.client += 1
        try:
            cursor = self._connection.execute(sql, params)
        except sqlite3.Error as error:
            raise StorageError(f"SQL failed: {error}\n  statement: {sql}") from error
        self._fire_statement_triggers(sql)
        return cursor

    def executemany(self, sql: str, rows: Iterable[Sequence[Any]]) -> sqlite3.Cursor:
        """Run one statement against many parameter rows (counted once per
        row, matching how a JDBC batch still ships per-row work)."""
        rows = list(rows)
        self.counts.client += len(rows)
        try:
            cursor = self._connection.executemany(sql, rows)
        except sqlite3.Error as error:
            raise StorageError(f"SQL failed: {error}\n  statement: {sql}") from error
        return cursor

    def executescript(self, script: str) -> None:
        """Run DDL; counted as a single client statement."""
        self.counts.client += 1
        try:
            self._connection.executescript(script)
        except sqlite3.Error as error:
            raise StorageError(f"SQL script failed: {error}") from error

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        return self.execute(sql, params).fetchall()

    def query_one(self, sql: str, params: Sequence[Any] = ()) -> Optional[tuple]:
        rows = self.execute(sql, params).fetchmany(2)
        if not rows:
            return None
        if len(rows) > 1:
            raise StorageError(f"expected at most one row from: {sql}")
        return rows[0]

    def clone(self) -> "Database":
        """Copy the full database into a fresh in-memory instance.

        Uses SQLite's backup API (page-level copy), so a loaded store can
        be snapshotted once and restored per benchmark run far faster
        than reloading.  Emulated statement-trigger registrations are
        wrapper state and are copied too; counters start at zero.
        """
        clone = Database()
        self._connection.commit()
        self._connection.backup(clone._connection)
        clone._statement_triggers = dict(self._statement_triggers)
        return clone

    def commit(self) -> None:
        self._connection.commit()

    def rollback(self) -> None:
        self._connection.rollback()

    def close(self) -> None:
        self._connection.close()

    # ------------------------------------------------------------------
    # Per-statement trigger emulation
    # ------------------------------------------------------------------
    def register_statement_trigger(self, table: str, sweep_sql: list[str]) -> None:
        """Register DELETE-trigger bodies fired after client deletes on
        ``table``.  Each body statement is itself treated as a delete on
        its own target table, so registered triggers chain (as DB2
        statement triggers would)."""
        self._statement_triggers[table.lower()] = list(sweep_sql)

    def clear_statement_triggers(self) -> None:
        self._statement_triggers.clear()

    def _fire_statement_triggers(self, sql: str) -> None:
        if not self._statement_triggers:
            return
        table = _delete_target(sql)
        if table is None:
            return
        self._run_trigger_chain(table)

    def _run_trigger_chain(self, table: str) -> None:
        for sweep_sql in self._statement_triggers.get(table.lower(), ()):
            self.counts.trigger_emulation += 1
            try:
                cursor = self._connection.execute(sweep_sql)
            except sqlite3.Error as error:
                raise StorageError(
                    f"emulated trigger failed: {error}\n  statement: {sweep_sql}"
                ) from error
            chained = _delete_target(sweep_sql)
            # Chain into the swept table's own trigger.  Stopping when a
            # sweep removed nothing bounds recursive schemas (a real DB2
            # statement trigger on a self-referencing table would not
            # terminate either; cascading delete stops the same way).
            if chained is not None and cursor.rowcount:
                self._run_trigger_chain(chained)


def _delete_target(sql: str) -> Optional[str]:
    """Table name if ``sql`` is a DELETE statement, else None."""
    stripped = sql.lstrip().lower()
    if not stripped.startswith("delete"):
        return None
    parts = stripped.split()
    try:
        from_index = parts.index("from")
    except ValueError:
        return None
    if from_index + 1 >= len(parts):
        return None
    return parts[from_index + 1].strip('";')
