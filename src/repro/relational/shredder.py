"""Shredding: load an XML document into the relational mapping.

Walks the document top-down; every element whose type anchors a
relation produces one tuple, with the PCDATA/attributes of its inlined
descendants folded into that tuple's columns.  ids are assigned
depth-first, so a subtree always occupies a contiguous id range under
its root tuple — the property the table-based insert's min/max offset
heuristic exploits (Section 6.2.2).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MappingError
from repro.relational.database import Database
from repro.relational.idgen import IdAllocator
from repro.relational.schema import (
    FIELD_ATTRIBUTE,
    FIELD_PCDATA,
    FIELD_PRESENCE,
    FIELD_REFS,
    INTERVAL_TABLE,
    MappingSchema,
    Relation,
)
from repro.xmlmodel.model import Document, Element


def create_schema(db: Database, schema: MappingSchema) -> None:
    """Create all tables and parentId indexes of the mapping."""
    for statement in schema.create_all_sql():
        db.execute(statement)


def shred_document(
    db: Database,
    schema: MappingSchema,
    document: Document,
    allocator: Optional[IdAllocator] = None,
) -> int:
    """Load ``document`` into an already-created schema.

    Returns the id assigned to the root tuple.  Rows are batched per
    relation with ``executemany`` (loading cost is not part of any
    measured experiment).
    """
    allocator = allocator or IdAllocator(db)
    shredder = _Shredder(schema, allocator, intervals=schema.intervals)
    if schema.intervals:
        # Multi-document stores append into the ordinal space past the
        # last occupied post value.
        row = db.query_one(f"SELECT MAX(post) FROM {INTERVAL_TABLE}")
        shredder._ordinal = row[0] or 0
    root_id = shredder.shred(document.root)
    for relation_name, rows in shredder.rows.items():
        relation = schema.relation(relation_name)
        placeholders = ", ".join("?" for _ in relation.all_columns)
        columns = ", ".join(f'"{c}"' for c in relation.all_columns)
        db.executemany(
            f'INSERT INTO "{relation_name}" ({columns}) VALUES ({placeholders})',
            rows,
        )
    if shredder.interval_rows:
        db.executemany(
            f"INSERT INTO {INTERVAL_TABLE} (id, pre, post, level) VALUES (?, ?, ?, ?)",
            shredder.interval_rows,
        )
    db.commit()
    return root_id


class _Shredder:
    def __init__(
        self,
        schema: MappingSchema,
        allocator: IdAllocator,
        intervals: bool = False,
    ) -> None:
        self.schema = schema
        self.allocator = allocator
        self.rows: dict[str, list[tuple]] = {name: [] for name in schema.relations}
        self._count = 0
        # Gapped pre/post ordinals, emitted only for whole-document loads
        # (spliced subtrees are indexed after the fact by the store's
        # interval index, which knows the insertion position).
        self.intervals = intervals
        self.interval_rows: list[tuple[int, int, int, int]] = []
        self._ordinal = 0

    def shred(self, root_element: Element) -> int:
        root_relation = self.schema.relation(self.schema.root)
        if root_relation.tag != root_element.name:
            raise MappingError(
                f"document root <{root_element.name}> does not match the mapping "
                f"root relation (tag {root_relation.tag!r})"
            )
        total = self._count_tuples(root_element, root_relation)
        first_id = self.allocator.reserve(total)
        self._next_id = first_id
        return self._emit(root_element, root_relation, parent_id=None)

    # ------------------------------------------------------------------
    def _count_tuples(self, element: Element, relation: Relation) -> int:
        count = 1
        for child_relation in self.schema.child_relations(relation.name):
            anchor = element_at(element, child_relation.parent_path)
            if anchor is None:
                continue
            for child in anchor.child_elements(child_relation.tag):
                count += self._count_tuples(child, child_relation)
        return count

    def _emit(
        self,
        element: Element,
        relation: Relation,
        parent_id: Optional[int],
        level: int = 0,
    ) -> int:
        tuple_id = self._next_id
        self._next_id += 1
        row = [tuple_id, parent_id]
        for inlined in relation.fields:
            row.append(extract_field(element, inlined))
        self.rows[relation.name].append(tuple(row))
        if self.intervals:
            self._ordinal += self.schema.interval_gap
            pre = self._ordinal
        for child_relation in self.schema.child_relations(relation.name):
            anchor = element_at(element, child_relation.parent_path)
            if anchor is None:
                continue
            for child in anchor.child_elements(child_relation.tag):
                self._emit(child, child_relation, parent_id=tuple_id, level=level + 1)
        if self.intervals:
            self._ordinal += self.schema.interval_gap
            self.interval_rows.append((tuple_id, pre, self._ordinal, level))
        return tuple_id


def shred_element(
    db: Database,
    schema: MappingSchema,
    relation: Relation,
    element: Element,
    parent_id: Optional[int],
    allocator: IdAllocator,
) -> int:
    """Insert one element subtree under an existing parent tuple.

    Used when an update statement inserts *constructed* XML content that
    maps to a child relation.  Returns the new root tuple's id.
    """
    if relation.tag != element.name:
        raise MappingError(
            f"element <{element.name}> does not anchor relation {relation.name!r} "
            f"(tag {relation.tag!r})"
        )
    shredder = _Shredder(schema, allocator)
    total = shredder._count_tuples(element, relation)
    first_id = allocator.reserve(total)
    shredder._next_id = first_id
    root_id = shredder._emit(element, relation, parent_id=parent_id)
    for relation_name, rows in shredder.rows.items():
        if not rows:
            continue
        rel = schema.relation(relation_name)
        placeholders = ", ".join("?" for _ in rel.all_columns)
        columns = ", ".join(f'"{c}"' for c in rel.all_columns)
        for row in rows:
            db.execute(
                f'INSERT INTO "{relation_name}" ({columns}) VALUES ({placeholders})',
                row,
            )
    return root_id


def element_at(element: Element, path: tuple[str, ...]) -> Optional[Element]:
    """Follow a single-occurrence child path; None if any hop is missing."""
    current: Optional[Element] = element
    for tag in path:
        if current is None:
            return None
        current = current.first_child_element(tag)
    return current


def extract_field(element: Element, inlined) -> Optional[object]:
    """Compute an inlined column's value for a relation-anchoring element."""
    target = element_at(element, inlined.path)
    if inlined.kind == FIELD_PRESENCE:
        return 1 if target is not None else None
    if target is None:
        return None
    if inlined.kind == FIELD_PCDATA:
        return target.text()
    if inlined.kind == FIELD_ATTRIBUTE:
        attribute = target.attributes.get(inlined.name)
        return attribute.value if attribute is not None else None
    if inlined.kind == FIELD_REFS:
        reference = target.references.get(inlined.name)
        return " ".join(reference.targets) if reference is not None else None
    raise MappingError(f"unknown inlined field kind {inlined.kind!r}")
