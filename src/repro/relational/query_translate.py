"""Translate XPath target paths and predicates to SQL over the mapping.

The update statements the paper evaluates all share one shape: a FOR
clause binds the update target via an absolute path with predicates
(``document("custdb.xml")//Order[Status="ready"]``).  This module turns
such a path into a :class:`TargetSelection`: the relation holding the
target tuples plus a WHERE clause selecting them.

Supported path features: child and ``//`` descendant steps, steps
through inlined elements, predicates with ``and``/``or``, comparisons
between relative paths (including ``@attr``) and literals/numbers, and
existence tests.  Predicates over child *relations* become correlated
EXISTS subqueries.  Anything else raises
:class:`~repro.errors.TranslationError` (the in-memory engine still
handles it; the relational store is scoped to the paper's workloads).

Column references in the produced WHERE clause are qualified with the
relation's (quoted) table name, which is valid in DELETE, UPDATE, and
SELECT alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import TranslationError
from repro.relational.schema import (
    FIELD_ATTRIBUTE,
    FIELD_PCDATA,
    FIELD_PRESENCE,
    FIELD_REFS,
    InlinedField,
    MappingSchema,
    Relation,
)
from repro.xpath.ast import (
    AttributeStep,
    BooleanOp,
    ChildStep,
    Comparison,
    ContextStart,
    DocumentStart,
    Exists,
    Expr,
    Literal,
    Number,
    Path,
    PathValue,
    VariableStart,
)


@dataclass
class TargetSelection:
    """Where a translated path's targets live.

    ``relation`` holds the tuples; ``where_sql``/``params`` select them.
    ``inlined_path`` is non-empty when the path ends *inside* a tuple
    (an inlined element) — the paper's "simple" update case.
    """

    relation: str
    where_sql: str = ""
    params: tuple = ()
    inlined_path: tuple[str, ...] = ()

    @property
    def is_inlined(self) -> bool:
        return bool(self.inlined_path)


class _AliasSource:
    def __init__(self) -> None:
        self._counter = 0

    def next(self) -> str:
        self._counter += 1
        return f"s{self._counter}"


def translate_target_path(
    schema: MappingSchema,
    path: Path,
    document_name: Optional[str] = None,
    resolver=None,
) -> TargetSelection:
    """Translate an absolute path to the selection of its target tuples.

    When ``document_name`` is given, the path's ``document(...)`` call
    must name it (the store serves exactly one document).

    ``resolver`` optionally lowers relation-to-relation descendant steps
    to a different plan shape (the interval store supplies one that
    replaces the nested parentId subqueries with pre/post range
    predicates); it may return None to fall back."""
    if not isinstance(path.start, DocumentStart):
        raise TranslationError(
            "only absolute paths (document(...) starts) can be translated; "
            f"got start {path.start!r}"
        )
    if document_name is not None and path.start.name != document_name:
        raise TranslationError(
            f"unknown document {path.start.name!r}; this store serves "
            f"{document_name!r}"
        )
    return _translate_steps(schema, path.steps, resolver=resolver)


def translate_relative_path(
    schema: MappingSchema,
    base: TargetSelection,
    path: Path,
    resolver=None,
) -> TargetSelection:
    """Translate a path relative to an existing selection (``$var/...``).

    The result's WHERE constrains the new relation's tuples to descend
    from tuples selected by ``base``."""
    if not isinstance(path.start, (VariableStart, ContextStart)):
        raise TranslationError(f"expected a relative path, got start {path.start!r}")
    if base.is_inlined:
        raise TranslationError("cannot navigate below an inlined element binding")
    return _translate_steps(schema, path.steps, base=base, resolver=resolver)


def _translate_steps(
    schema: MappingSchema,
    steps: Sequence,
    base: Optional[TargetSelection] = None,
    resolver=None,
) -> TargetSelection:
    aliases = _AliasSource()
    if base is None:
        relation: Optional[Relation] = None
        conditions: list[str] = []
        params: list = []
    else:
        relation = schema.relation(base.relation)
        conditions = [base.where_sql] if base.where_sql else []
        params = list(base.params)
    inlined: tuple[str, ...] = ()

    for step in steps:
        if not isinstance(step, ChildStep):
            raise TranslationError(
                f"step {step!r} cannot be translated to SQL (references and "
                "attribute bindings are resolved by the update translator)"
            )
        if relation is None:
            root = schema.relation(schema.root)
            if step.descendant:
                relation = _find_descendant_relation(schema, schema.root, step.name, True)
            elif root.tag == step.name:
                relation = root
            else:
                raise TranslationError(
                    f"path step {step.name!r} does not match the mapping root "
                    f"(tag {root.tag!r})"
                )
            conditions, params = _apply_predicates(
                schema, relation, (), step.predicates, conditions, params, aliases
            )
            continue
        # Within a relation: descend to a child relation or an inlined element.
        if step.descendant:
            next_relation = _find_descendant_relation(schema, relation.name, step.name, False)
            lowered = None
            if resolver is not None:
                lowered = resolver(relation, conditions, params, next_relation)
            if lowered is not None:
                conditions, params = lowered
            else:
                chain = _relation_chain(schema, relation.name, next_relation.name)
                conditions, params = _link_down(
                    schema, chain, conditions, params, aliases
                )
            relation = next_relation
            inlined = ()
        else:
            child_relation = _direct_child_relation(schema, relation, inlined, step.name)
            if child_relation is not None:
                conditions, params = _link_down(
                    schema, [relation, child_relation], conditions, params, aliases
                )
                relation = child_relation
                inlined = ()
            elif _has_inlined(relation, inlined + (step.name,)):
                inlined = inlined + (step.name,)
            else:
                raise TranslationError(
                    f"element {step.name!r} is neither a child relation nor an "
                    f"inlined element under relation {relation.name!r}"
                )
        conditions, params = _apply_predicates(
            schema, relation, inlined, step.predicates, conditions, params, aliases
        )

    if relation is None:
        raise TranslationError("path has no steps to translate")
    where_sql = " AND ".join(f"({condition})" for condition in conditions)
    return TargetSelection(relation.name, where_sql, tuple(params), inlined)


# ----------------------------------------------------------------------
# Relation navigation helpers
# ----------------------------------------------------------------------
def _direct_child_relation(
    schema: MappingSchema,
    relation: Relation,
    inlined: tuple[str, ...],
    tag: str,
) -> Optional[Relation]:
    for child_name in relation.children:
        child = schema.relation(child_name)
        if child.tag == tag and child.parent_path == inlined:
            return child
    return None


def _has_inlined(relation: Relation, path: tuple[str, ...]) -> bool:
    return any(
        inlined.path[: len(path)] == path for inlined in relation.fields
    )


def _find_descendant_relation(
    schema: MappingSchema,
    start: str,
    tag: str,
    include_start: bool,
) -> Relation:
    matches: list[Relation] = []
    queue = [start] if include_start else list(schema.relation(start).children)
    visited: set[str] = set()
    while queue:
        name = queue.pop(0)
        if name in visited:
            continue
        visited.add(name)
        candidate = schema.relation(name)
        if candidate.tag == tag:
            matches.append(candidate)
        queue.extend(candidate.children)
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise TranslationError(f"no relation with tag {tag!r} below {start!r}")
    raise TranslationError(
        f"descendant step //{tag} is ambiguous: relations "
        f"{[m.name for m in matches]}"
    )


def _relation_chain(schema: MappingSchema, top: str, bottom: str) -> list[Relation]:
    chain = [schema.relation(bottom)]
    while chain[0].name != top:
        parent = chain[0].parent
        if parent is None:
            raise TranslationError(f"{bottom!r} is not below {top!r}")
        chain.insert(0, schema.relation(parent))
    return chain


def _link_down(
    schema: MappingSchema,
    chain: list[Relation],
    conditions: list[str],
    params: list,
    aliases: _AliasSource,
) -> tuple[list[str], list]:
    """Rewrite a selection on chain[0] into one on chain[-1]: the new
    relation's parentId chain must land in the old selection."""
    top = chain[0]
    bottom = chain[-1]
    inner_where = " AND ".join(f"({c})" for c in conditions)
    # Build nested IN subqueries bottom-up: parentId IN (SELECT id FROM ...).
    current_sql = f'SELECT id FROM "{top.name}"'
    if inner_where:
        current_sql += f" WHERE {inner_where}"
    for relation in chain[1:-1]:
        current_sql = (
            f'SELECT id FROM "{relation.name}" WHERE parentId IN ({current_sql})'
        )
    new_condition = f'"{bottom.name}".parentId IN ({current_sql})'
    return [new_condition], params


# ----------------------------------------------------------------------
# Predicate translation
# ----------------------------------------------------------------------
def _apply_predicates(
    schema: MappingSchema,
    relation: Relation,
    inlined: tuple[str, ...],
    predicates: Sequence[Expr],
    conditions: list[str],
    params: list,
    aliases: _AliasSource,
) -> tuple[list[str], list]:
    qualifier = f'"{relation.name}"'
    for predicate in predicates:
        sql, predicate_params = _translate_expr(
            schema, relation, inlined, qualifier, predicate, aliases
        )
        conditions = conditions + [sql]
        params = params + list(predicate_params)
    return conditions, params


def translate_predicate(
    schema: MappingSchema,
    selection: TargetSelection,
    predicate: Expr,
) -> TargetSelection:
    """Add one more predicate (e.g. from a WHERE clause) to a selection."""
    relation = schema.relation(selection.relation)
    aliases = _AliasSource()
    sql, params = _translate_expr(
        schema, relation, selection.inlined_path, f'"{relation.name}"', predicate, aliases
    )
    conditions = [selection.where_sql] if selection.where_sql else []
    conditions.append(sql)
    return TargetSelection(
        selection.relation,
        " AND ".join(f"({c})" for c in conditions),
        selection.params + tuple(params),
        selection.inlined_path,
    )


def _translate_expr(
    schema: MappingSchema,
    relation: Relation,
    inlined: tuple[str, ...],
    qualifier: str,
    expr: Expr,
    aliases: _AliasSource,
) -> tuple[str, list]:
    if isinstance(expr, BooleanOp):
        left_sql, left_params = _translate_expr(
            schema, relation, inlined, qualifier, expr.left, aliases
        )
        right_sql, right_params = _translate_expr(
            schema, relation, inlined, qualifier, expr.right, aliases
        )
        op = "AND" if expr.op == "and" else "OR"
        return f"({left_sql}) {op} ({right_sql})", left_params + right_params
    if isinstance(expr, Comparison):
        return _translate_comparison(schema, relation, inlined, qualifier, expr, aliases)
    if isinstance(expr, Exists):
        return _translate_existence(
            schema, relation, inlined, qualifier, expr.path, aliases
        )
    raise TranslationError(f"predicate {expr!r} cannot be translated to SQL")


def _translate_comparison(
    schema: MappingSchema,
    relation: Relation,
    inlined: tuple[str, ...],
    qualifier: str,
    expr: Comparison,
    aliases: _AliasSource,
) -> tuple[str, list]:
    # Normalise to: path op constant.
    if isinstance(expr.left, (Literal, Number)) and isinstance(expr.right, PathValue):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(expr.op, expr.op)
        expr = Comparison(flipped, expr.right, expr.left)
    if not isinstance(expr.left, PathValue) or not isinstance(expr.right, (Literal, Number)):
        raise TranslationError(
            f"only comparisons between a path and a constant are translatable: {expr!r}"
        )
    numeric = isinstance(expr.right, Number)
    value = expr.right.value
    op = "=" if expr.op == "=" else ("<>" if expr.op == "!=" else expr.op)
    column_sql, remaining_path, sub_relation = _resolve_value_path(
        schema, relation, inlined, qualifier, expr.left.path
    )
    if sub_relation is None:
        lhs = f"CAST({column_sql} AS REAL)" if numeric else column_sql
        return f"{lhs} {op} ?", [value]
    # The path crosses into child relations: correlated EXISTS.
    return _exists_chain(
        schema, sub_relation, remaining_path, qualifier, op, value, numeric, aliases
    )


def _translate_existence(
    schema: MappingSchema,
    relation: Relation,
    inlined: tuple[str, ...],
    qualifier: str,
    path: Path,
    aliases: _AliasSource,
) -> tuple[str, list]:
    column_sql, remaining_path, sub_relation = _resolve_value_path(
        schema, relation, inlined, qualifier, path, for_existence=True
    )
    if sub_relation is None:
        return f"{column_sql} IS NOT NULL", []
    return _exists_chain(
        schema, sub_relation, remaining_path, qualifier, None, None, False, aliases
    )


def _resolve_value_path(
    schema: MappingSchema,
    relation: Relation,
    inlined: tuple[str, ...],
    qualifier: str,
    path: Path,
    for_existence: bool = False,
) -> tuple[Optional[str], tuple, Optional[Relation]]:
    """Resolve a relative path inside ``relation``.

    Returns ``(column_sql, remaining_steps, child_relation)``: either the
    path lands on an inlined column (``column_sql`` set), or it enters a
    child relation (``child_relation`` set with the steps still to apply).
    """
    if not isinstance(path.start, (ContextStart, VariableStart)):
        raise TranslationError(f"expected a relative path in predicate, got {path!r}")
    position = inlined
    steps = list(path.steps)
    while steps:
        step = steps[0]
        if isinstance(step, AttributeStep):
            inlined_field = _find_field(
                relation, position, (FIELD_ATTRIBUTE, FIELD_REFS), step.name
            )
            if inlined_field is None:
                raise TranslationError(
                    f"attribute {step.name!r} is not stored on relation "
                    f"{relation.name!r} at path {position}"
                )
            return f'{qualifier}."{inlined_field.column}"', (), None
        if not isinstance(step, ChildStep) or step.descendant or step.predicates:
            raise TranslationError(
                f"predicate path step {step!r} cannot be translated"
            )
        child_relation = _direct_child_relation(schema, relation, position, step.name)
        if child_relation is not None:
            return None, tuple(steps[1:]), child_relation
        position = position + (step.name,)
        if not _has_inlined(relation, position):
            raise TranslationError(
                f"element {step.name!r} not found under relation {relation.name!r}"
            )
        steps.pop(0)
    # Path ended on an inlined element: use its PCDATA column (value
    # comparison) or its presence (existence test).
    pcdata = _find_field(relation, position, (FIELD_PCDATA,))
    if pcdata is not None:
        return f'{qualifier}."{pcdata.column}"', (), None
    if for_existence:
        presence = _find_field(relation, position, (FIELD_PRESENCE,))
        if presence is not None:
            return f'{qualifier}."{presence.column}"', (), None
    raise TranslationError(
        f"path at {position} under relation {relation.name!r} has no "
        "comparable column"
    )


def _find_field(
    relation: Relation,
    path: tuple[str, ...],
    kinds: tuple[str, ...],
    name: str = "",
) -> Optional[InlinedField]:
    for inlined_field in relation.fields:
        if inlined_field.path == path and inlined_field.kind in kinds:
            if not name or inlined_field.name == name:
                return inlined_field
    return None


def _exists_chain(
    schema: MappingSchema,
    relation: Relation,
    remaining_steps: tuple,
    outer_qualifier: str,
    op: Optional[str],
    value,
    numeric: bool,
    aliases: _AliasSource,
) -> tuple[str, list]:
    """EXISTS (...) descending from the outer tuple through ``relation``
    and any further steps to a final column condition."""
    alias = aliases.next()
    inner_path = Path(ContextStart(), remaining_steps)
    params: list = []
    if remaining_steps:
        condition_sql, inner_params = _translate_expr_inner(
            schema, relation, alias, inner_path, op, value, numeric, aliases
        )
        params.extend(inner_params)
    elif op is not None:
        pcdata = _find_field(relation, (), (FIELD_PCDATA,))
        if pcdata is None:
            raise TranslationError(
                f"relation {relation.name!r} has no PCDATA column to compare"
            )
        lhs = f'{alias}."{pcdata.column}"'
        if numeric:
            lhs = f"CAST({lhs} AS REAL)"
        condition_sql = f"{lhs} {op} ?"
        params.append(value)
    else:
        condition_sql = "1"
    sql = (
        f'EXISTS (SELECT 1 FROM "{relation.name}" {alias} '
        f"WHERE {alias}.parentId = {outer_qualifier}.id AND ({condition_sql}))"
    )
    return sql, params


def _translate_expr_inner(
    schema: MappingSchema,
    relation: Relation,
    alias: str,
    path: Path,
    op: Optional[str],
    value,
    numeric: bool,
    aliases: _AliasSource,
) -> tuple[str, list]:
    column_sql, remaining, sub_relation = _resolve_value_path(
        schema, relation, (), alias, path, for_existence=op is None
    )
    if sub_relation is None:
        if op is None:
            return f"{column_sql} IS NOT NULL", []
        lhs = f"CAST({column_sql} AS REAL)" if numeric else column_sql
        return f"{lhs} {op} ?", [value]
    inner_alias_qualifier = alias
    sql, params = _exists_chain(
        schema, sub_relation, remaining, inner_alias_qualifier, op, value, numeric, aliases
    )
    return sql, params
