"""Delete-propagation triggers over the mapping (Section 6.1.1).

Two flavours, matching the paper:

* **per-tuple** triggers are real SQLite ``FOR EACH ROW`` triggers: when
  a parent tuple dies, the trigger deletes the child tuples whose
  ``parentId`` equals the dead tuple's id, which recursively fires the
  child relation's own trigger;
* **per-statement** triggers fire once per DELETE statement, *after*
  all relevant tuples are gone, and so must sweep each child relation
  for orphans (``parentId NOT IN (SELECT id FROM parent)``) — a scan of
  the whole child relation (or its parentId index).  SQLite has no
  statement triggers, so these bodies are registered with the
  :class:`~repro.relational.database.Database` wrapper's emulation
  (see DESIGN.md).

Only one flavour may be active at a time; strategy selection installs
the right one.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.relational.schema import MappingSchema


def per_tuple_trigger_name(child_relation: str) -> str:
    return f"trg_row_del_{child_relation}"


def install_per_tuple_triggers(db: Database, schema: MappingSchema) -> None:
    """Create AFTER DELETE FOR EACH ROW triggers down the relation tree."""
    for relation in schema.iter_top_down():
        for child_name in relation.children:
            db.execute(
                f'CREATE TRIGGER IF NOT EXISTS "{per_tuple_trigger_name(child_name)}" '
                f'AFTER DELETE ON "{relation.name}" FOR EACH ROW BEGIN '
                f'DELETE FROM "{child_name}" WHERE parentId = OLD.id; END'
            )


def remove_per_tuple_triggers(db: Database, schema: MappingSchema) -> None:
    for relation in schema.iter_top_down():
        for child_name in relation.children:
            db.execute(f'DROP TRIGGER IF EXISTS "{per_tuple_trigger_name(child_name)}"')


def orphan_sweep_sql(schema: MappingSchema, parent_relation: str) -> list[str]:
    """The statement-trigger body for deletes on ``parent_relation``:
    one orphan sweep per child relation.

    A child may have several possible parent relations (a recursive
    relation parents itself *and* hangs under its declared parent), so
    the sweep checks the union of all of them.
    """
    statements = []
    for child in schema.relation(parent_relation).children:
        survivors = " UNION ALL ".join(
            f'SELECT id FROM "{parent}"'
            for parent in schema.parent_relations_of(child)
        )
        statements.append(
            f'DELETE FROM "{child}" WHERE parentId NOT IN ({survivors})'
        )
    return statements


def install_per_statement_triggers(db: Database, schema: MappingSchema) -> None:
    """Register emulated FOR EACH STATEMENT delete triggers for the whole
    relation tree (bodies chain through the wrapper)."""
    for relation in schema.iter_top_down():
        if relation.children:
            db.register_statement_trigger(relation.name, orphan_sweep_sql(schema, relation.name))


def remove_per_statement_triggers(db: Database) -> None:
    db.clear_statement_triggers()
