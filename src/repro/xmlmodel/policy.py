"""Reference policy: which attributes are IDs and which are references.

Plain XML 1.0 syntax cannot distinguish a data-valued attribute from an
IDREF/IDREFS attribute — that typing lives in the DTD.  The paper's data
model (Section 3.1) treats references as structural objects distinct
from attributes, so the parser needs a policy telling it, for each
(element name, attribute name) pair, whether the attribute is:

* the element's ``ID``,
* an ``IDREF``/``IDREFS`` reference list, or
* ordinary CDATA.

A policy is constructed either explicitly (:meth:`RefPolicy.explicit`),
from a parsed DTD (:meth:`RefPolicy.from_dtd`), or defaulted
(:meth:`RefPolicy.default`) — where only an attribute literally named
``ID`` is treated as the ID and everything else is CDATA.
"""

from __future__ import annotations

from typing import Iterable, Mapping

ATTR_CDATA = "cdata"
ATTR_ID = "id"
ATTR_IDREF = "idref"
ATTR_IDREFS = "idrefs"

_KINDS = frozenset({ATTR_CDATA, ATTR_ID, ATTR_IDREF, ATTR_IDREFS})

# Key for a policy rule that applies to the attribute name on any element.
ANY_ELEMENT = "*"


class RefPolicy:
    """Classifies attributes into ID / IDREF / IDREFS / CDATA.

    Rules are keyed by ``(element_name, attribute_name)``; a rule whose
    element name is ``"*"`` applies to that attribute name on every
    element.  Exact element matches take precedence over wildcards.
    """

    def __init__(
        self,
        rules: Mapping[tuple[str, str], str] | None = None,
        id_attribute: str = "ID",
    ) -> None:
        self.id_attribute = id_attribute
        self._rules: dict[tuple[str, str], str] = {}
        for key, kind in (rules or {}).items():
            self.add_rule(key[0], key[1], kind)

    def add_rule(self, element_name: str, attribute_name: str, kind: str) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown attribute kind {kind!r}; expected one of {sorted(_KINDS)}")
        self._rules[(element_name, attribute_name)] = kind

    def classify(self, element_name: str, attribute_name: str) -> str:
        """Return the attribute kind for this (element, attribute) pair."""
        exact = self._rules.get((element_name, attribute_name))
        if exact is not None:
            return exact
        wildcard = self._rules.get((ANY_ELEMENT, attribute_name))
        if wildcard is not None:
            return wildcard
        if attribute_name == self.id_attribute:
            return ATTR_ID
        return ATTR_CDATA

    def is_reference(self, element_name: str, attribute_name: str) -> bool:
        return self.classify(element_name, attribute_name) in (ATTR_IDREF, ATTR_IDREFS)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def default(cls, id_attribute: str = "ID") -> "RefPolicy":
        """Attributes named ``id_attribute`` are IDs; everything else CDATA."""
        return cls(id_attribute=id_attribute)

    @classmethod
    def explicit(
        cls,
        references: Iterable[str] = (),
        singleton_references: Iterable[str] = (),
        id_attribute: str = "ID",
    ) -> "RefPolicy":
        """Build a policy from attribute-name lists applying to all elements.

        ``references`` names become IDREFS lists; ``singleton_references``
        become IDREF (singleton) lists.
        """
        policy = cls(id_attribute=id_attribute)
        for name in references:
            policy.add_rule(ANY_ELEMENT, name, ATTR_IDREFS)
        for name in singleton_references:
            policy.add_rule(ANY_ELEMENT, name, ATTR_IDREF)
        return policy

    @classmethod
    def from_dtd(cls, dtd) -> "RefPolicy":
        """Derive the policy from a parsed :class:`~repro.xmlmodel.dtd.Dtd`.

        The DTD's ATTLIST declarations carry the authoritative
        ID/IDREF/IDREFS typing.
        """
        policy = cls(id_attribute=dtd.id_attribute_name() or "ID")
        for element_name, attlist in dtd.attributes.items():
            for attribute in attlist.values():
                kind = {
                    "ID": ATTR_ID,
                    "IDREF": ATTR_IDREF,
                    "IDREFS": ATTR_IDREFS,
                }.get(attribute.attr_type, ATTR_CDATA)
                policy.add_rule(element_name, attribute.name, kind)
        return policy

    def fingerprint(self) -> tuple:
        """A hashable identity of the policy's classification behaviour.

        Two policies with equal fingerprints classify every attribute
        identically, so a statement parsed under one can be reused under
        the other — this is the policy component of the statement-cache
        key (:mod:`repro.xquery.cache`).  Computed on demand because
        policies are mutable via :meth:`add_rule`.
        """
        return (self.id_attribute, tuple(sorted(self._rules.items())))

    def __repr__(self) -> str:
        return f"RefPolicy(rules={len(self._rules)}, id_attribute={self.id_attribute!r})"


#: Policy matching the paper's running biology-lab example (Figure 1):
#: ``managers`` is an IDREFS list; ``source``, ``biologist``, ``lab`` and
#: ``worksAt`` are IDREF singletons; ``ID`` is the ID attribute.
BIO_POLICY = RefPolicy.explicit(
    references=("managers",),
    singleton_references=("source", "biologist", "lab", "worksAt"),
)
