"""Core node classes of the in-memory XML data model.

Identity and mutation rules
---------------------------

Every node object has a unique identity (``node_id``); bindings produced
by path evaluation hold node objects, so a binding survives structural
edits around it (e.g. an :class:`RefEntry` binding remains valid when a
sibling entry is inserted before it).  Deleted nodes are marked with a
tombstone (``is_deleted``) which the update executor consults to enforce
the paper's rule that a deleted binding cannot be reused later in an
update sequence.

Attributes and reference lists are kept in *separate* maps on an
element, mirroring Section 3.1's distinction between data-valued
attributes and structure-encoding IDREF/IDREFS attributes.  Which
attribute names are references is decided at parse time by a
:class:`~repro.xmlmodel.policy.RefPolicy`.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional, Union

from repro.errors import ModelError

_node_counter = itertools.count(1)


def _next_node_id() -> int:
    return next(_node_counter)


class Node:
    """Common base for every addressable object in the model.

    Subclasses: :class:`Element`, :class:`Text`, :class:`Attribute`,
    :class:`Reference`, :class:`RefEntry`.
    """

    __slots__ = ("node_id", "parent", "is_deleted")

    def __init__(self) -> None:
        self.node_id: int = _next_node_id()
        self.parent: Optional[Node] = None
        self.is_deleted: bool = False

    def mark_deleted(self) -> None:
        """Tombstone this node and everything reachable below it."""
        self.is_deleted = True

    @property
    def kind(self) -> str:
        """Lower-case kind tag used in diagnostics ('element', 'text', ...)."""
        return type(self).__name__.lower()

    def root_element(self) -> Optional["Element"]:
        """Walk parent pointers up to the highest element, or None."""
        node: Optional[Node] = self
        last_element: Optional[Element] = None
        while node is not None:
            if isinstance(node, Element):
                last_element = node
            node = node.parent
        return last_element


class Text(Node):
    """A PCDATA node: scalar string content inside an element."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        super().__init__()
        if not isinstance(value, str):
            raise ModelError(f"PCDATA value must be str, got {type(value).__name__}")
        self.value = value

    def __repr__(self) -> str:
        preview = self.value if len(self.value) <= 30 else self.value[:27] + "..."
        return f"Text({preview!r})"

    def copy(self) -> "Text":
        """Return a detached copy with fresh identity."""
        return Text(self.value)


class Attribute(Node):
    """A data-valued attribute: a (name, string value) pair.

    ID attributes are modelled as plain attributes whose name the
    document's :class:`~repro.xmlmodel.policy.RefPolicy` designates as
    the ID; IDREF/IDREFS attributes are *not* Attributes — they are
    :class:`Reference` objects.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: str) -> None:
        super().__init__()
        self.name = name
        self.value = value

    def __repr__(self) -> str:
        return f"Attribute({self.name}={self.value!r})"

    def copy(self) -> "Attribute":
        return Attribute(self.name, self.value)


class RefEntry(Node):
    """A single IDREF: one entry inside a :class:`Reference` list.

    Binding to an individual entry (the paper's ``ref(label, target)``
    function) yields a ``RefEntry``; positional inserts
    (``INSERT ... BEFORE $ref``) address the entry's current position in
    its parent list at execution time.
    """

    __slots__ = ("target",)

    def __init__(self, target: str) -> None:
        super().__init__()
        self.target = target

    @property
    def label(self) -> str:
        """Name of the enclosing reference list ('' if detached)."""
        ref = self.parent
        return ref.name if isinstance(ref, Reference) else ""

    def __repr__(self) -> str:
        return f"RefEntry({self.label}->{self.target})"

    def copy(self) -> "RefEntry":
        return RefEntry(self.target)


class Reference(Node):
    """A named, ordered list of IDREF entries (an IDREFS attribute).

    An IDREF attribute is represented as a singleton list, per the
    simplification in Section 3.1 of the paper.
    """

    __slots__ = ("name", "entries")

    def __init__(self, name: str, targets: Iterable[str] = ()) -> None:
        super().__init__()
        self.name = name
        self.entries: list[RefEntry] = []
        for target in targets:
            self.append(target)

    @property
    def targets(self) -> list[str]:
        """The referenced IDs, in list order."""
        return [entry.target for entry in self.entries]

    def append(self, target: str) -> RefEntry:
        """Add a reference to ``target`` at the end of the list."""
        entry = RefEntry(target)
        entry.parent = self
        self.entries.append(entry)
        return entry

    def insert_relative(self, anchor: RefEntry, target: str, before: bool) -> RefEntry:
        """Insert a new entry directly before or after ``anchor``."""
        position = self._index_of(anchor)
        if not before:
            position += 1
        entry = RefEntry(target)
        entry.parent = self
        self.entries.insert(position, entry)
        return entry

    def remove(self, entry: RefEntry) -> None:
        """Remove a single entry; the rest of the list is preserved."""
        position = self._index_of(entry)
        del self.entries[position]
        entry.parent = None
        entry.mark_deleted()

    def _index_of(self, entry: RefEntry) -> int:
        for index, candidate in enumerate(self.entries):
            if candidate is entry:
                return index
        raise ModelError(f"{entry!r} is not an entry of reference list {self.name!r}")

    def mark_deleted(self) -> None:
        super().mark_deleted()
        for entry in self.entries:
            entry.is_deleted = True

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[RefEntry]:
        return iter(self.entries)

    def __repr__(self) -> str:
        return f"Reference({self.name}={' '.join(self.targets)!r})"

    def copy(self) -> "Reference":
        return Reference(self.name, self.targets)


Child = Union["Element", Text]


class Element(Node):
    """An XML element: name, attributes, reference lists, ordered children.

    Mutations keep parent pointers and the owning document's ID index
    consistent.  All structural update primitives from Section 3.2 are
    built on this class's methods.
    """

    __slots__ = ("name", "attributes", "references", "children")

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self.attributes: dict[str, Attribute] = {}
        self.references: dict[str, Reference] = {}
        self.children: list[Child] = []

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------
    def get_attribute(self, name: str) -> Optional[Attribute]:
        return self.attributes.get(name)

    def set_attribute(self, name: str, value: str) -> Attribute:
        """Create or overwrite attribute ``name``.

        Unlike :meth:`add_attribute`, silently replaces an existing
        attribute — used by the parser and by ``Replace`` semantics.
        """
        existing = self.attributes.pop(name, None)
        if existing is not None:
            existing.parent = None
            existing.mark_deleted()
        attribute = Attribute(name, value)
        attribute.parent = self
        self.attributes[name] = attribute
        return attribute

    def add_attribute(self, attribute: Attribute) -> Attribute:
        """Attach a new attribute; fails if the name already exists.

        This implements the paper's rule that "an attempt to insert an
        attribute with the same name as an existing attribute fails".
        """
        if attribute.name in self.attributes:
            raise ModelError(
                f"element <{self.name}> already has an attribute named {attribute.name!r}"
            )
        attribute.parent = self
        self.attributes[attribute.name] = attribute
        return attribute

    def remove_attribute(self, attribute: Attribute) -> None:
        owned = self.attributes.get(attribute.name)
        if owned is not attribute:
            raise ModelError(
                f"{attribute!r} is not an attribute of element <{self.name}>"
            )
        del self.attributes[attribute.name]
        attribute.parent = None
        attribute.mark_deleted()

    def rename_attribute(self, attribute: Attribute, new_name: str) -> None:
        owned = self.attributes.get(attribute.name)
        if owned is not attribute:
            raise ModelError(
                f"{attribute!r} is not an attribute of element <{self.name}>"
            )
        if new_name in self.attributes:
            raise ModelError(
                f"element <{self.name}> already has an attribute named {new_name!r}"
            )
        del self.attributes[attribute.name]
        attribute.name = new_name
        self.attributes[new_name] = attribute

    # ------------------------------------------------------------------
    # Reference lists (IDREF / IDREFS)
    # ------------------------------------------------------------------
    def get_reference(self, name: str) -> Optional[Reference]:
        return self.references.get(name)

    def add_reference(self, name: str, target: str) -> RefEntry:
        """Insert a reference named ``name`` pointing at ``target``.

        Per Section 3.2: "an attempt to insert a reference with the same
        name as an existing IDREFS adds an extra entry into the IDREFS."
        """
        reference = self.references.get(name)
        if reference is None:
            reference = Reference(name)
            reference.parent = self
            self.references[name] = reference
        return reference.append(target)

    def attach_reference(self, reference: Reference) -> Reference:
        """Attach a whole reference list (used by Replace and the parser)."""
        if reference.name in self.references:
            raise ModelError(
                f"element <{self.name}> already has a reference list {reference.name!r}"
            )
        reference.parent = self
        self.references[reference.name] = reference
        return reference

    def remove_reference(self, reference: Reference) -> None:
        owned = self.references.get(reference.name)
        if owned is not reference:
            raise ModelError(
                f"{reference!r} is not a reference list of element <{self.name}>"
            )
        del self.references[reference.name]
        reference.parent = None
        reference.mark_deleted()

    def remove_ref_entry(self, entry: RefEntry) -> None:
        """Remove a single IDREF; drops the list itself if it empties."""
        reference = entry.parent
        if not isinstance(reference, Reference) or reference.parent is not self:
            raise ModelError(f"{entry!r} is not a reference entry of element <{self.name}>")
        reference.remove(entry)
        if not reference.entries:
            del self.references[reference.name]
            reference.parent = None
            reference.mark_deleted()

    def rename_reference(self, reference: Reference, new_name: str) -> None:
        """Rename an entire IDREFS list (individual IDREFs cannot be renamed)."""
        owned = self.references.get(reference.name)
        if owned is not reference:
            raise ModelError(
                f"{reference!r} is not a reference list of element <{self.name}>"
            )
        if new_name in self.references:
            raise ModelError(
                f"element <{self.name}> already has a reference list {new_name!r}"
            )
        del self.references[reference.name]
        reference.name = new_name
        self.references[new_name] = reference

    # ------------------------------------------------------------------
    # Children (elements and PCDATA)
    # ------------------------------------------------------------------
    def append_child(self, child: Child) -> Child:
        self._check_attachable(child)
        child.parent = self
        self.children.append(child)
        return child

    def insert_child_relative(self, anchor: Child, child: Child, before: bool) -> Child:
        """Insert ``child`` directly before or after ``anchor``."""
        self._check_attachable(child)
        position = self._child_index(anchor)
        if not before:
            position += 1
        child.parent = self
        self.children.insert(position, child)
        return child

    def remove_child(self, child: Child) -> None:
        position = self._child_index(child)
        del self.children[position]
        child.parent = None
        child.mark_deleted()

    def replace_child(self, old: Child, new: Child) -> Child:
        """Atomic in-place replacement preserving document position."""
        self._check_attachable(new)
        position = self._child_index(old)
        old.parent = None
        old.mark_deleted()
        new.parent = self
        self.children[position] = new
        return new

    def child_index(self, child: Child) -> int:
        """0-based position of ``child`` among this element's children.

        This is the value the paper's ``$x.index()`` predicate exposes.
        """
        return self._child_index(child)

    def _child_index(self, child: Child) -> int:
        for index, candidate in enumerate(self.children):
            if candidate is child:
                return index
        raise ModelError(f"{child!r} is not a child of element <{self.name}>")

    def _check_attachable(self, child: Child) -> None:
        if not isinstance(child, (Element, Text)):
            raise ModelError(
                f"only elements and PCDATA can be children, got {type(child).__name__}"
            )
        if child.parent is not None:
            raise ModelError(f"{child!r} is already attached to a parent")

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def child_elements(self, name: Optional[str] = None) -> list["Element"]:
        """Element children, optionally filtered by tag name."""
        return [
            child
            for child in self.children
            if isinstance(child, Element) and (name is None or child.name == name)
        ]

    def text(self) -> str:
        """Concatenated PCDATA of *direct* text children."""
        return "".join(child.value for child in self.children if isinstance(child, Text))

    def first_child_element(self, name: str) -> Optional["Element"]:
        for child in self.children:
            if isinstance(child, Element) and child.name == name:
                return child
        return None

    def iter_descendants(self, include_self: bool = False) -> Iterator["Element"]:
        """Depth-first, document-order iteration over descendant elements."""
        if include_self:
            yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter_descendants(include_self=True)

    def mark_deleted(self) -> None:
        super().mark_deleted()
        for attribute in self.attributes.values():
            attribute.is_deleted = True
        for reference in self.references.values():
            reference.mark_deleted()
        for child in self.children:
            child.mark_deleted()

    def copy(self) -> "Element":
        """Deep copy with fresh identity throughout (copy semantics of Insert)."""
        clone = Element(self.name)
        for attribute in self.attributes.values():
            clone.add_attribute(attribute.copy())
        for reference in self.references.values():
            clone.attach_reference(reference.copy())
        for child in self.children:
            clone.append_child(child.copy())
        return clone

    def __repr__(self) -> str:
        return f"Element(<{self.name}> id={self.node_id})"


class Document:
    """A parsed XML document: a root element plus an ID index.

    ``id_attribute`` names the attribute that carries element IDs (the
    sample document and DTDs in the paper use ``ID``); the index maps ID
    values to elements and is maintained lazily via :meth:`reindex`.
    """

    def __init__(self, root: Element, id_attribute: str = "ID") -> None:
        if not isinstance(root, Element):
            raise ModelError("document root must be an element")
        self.root = root
        self.id_attribute = id_attribute
        self._id_index: dict[str, Element] = {}
        self.reindex()

    def reindex(self) -> None:
        """Rebuild the ID-to-element index from the current tree."""
        self._id_index = {}
        for element in self.root.iter_descendants(include_self=True):
            attribute = element.attributes.get(self.id_attribute)
            if attribute is not None:
                self._id_index[attribute.value] = element

    def element_by_id(self, id_value: str) -> Optional[Element]:
        """Look up an element by ID, tolerating stale index entries."""
        element = self._id_index.get(id_value)
        if element is not None and not element.is_deleted:
            return element
        self.reindex()
        return self._id_index.get(id_value)

    def iter_elements(self) -> Iterator[Element]:
        """All elements in document order, root first."""
        return self.root.iter_descendants(include_self=True)

    def count_elements(self) -> int:
        return sum(1 for _ in self.iter_elements())

    def copy(self) -> "Document":
        return Document(self.root.copy(), id_attribute=self.id_attribute)

    def __repr__(self) -> str:
        return f"Document(root=<{self.root.name}>, elements={self.count_elements()})"
