"""In-memory XML data model per the XML Query Data Model simplification
used in "Updating XML" (Section 3.1).

The model views a document as a node-labelled tree in which

* an **element** has a name, a set of attributes, a set of named
  reference lists (IDREF/IDREFS), and an ordered list of children
  (elements and PCDATA),
* an **attribute** is a (name, string value) pair,
* a **reference list** (IDREFS) is a named *ordered* list of IDs; an
  IDREF is a singleton list,
* **PCDATA** is scalar text content inside an element.

Public entry points:

* :func:`parse` / :func:`parse_file` — parse XML text into a
  :class:`Document`;
* :func:`serialize` — turn a document or element back into XML text;
* :class:`RefPolicy` — declares which attributes are IDs and which are
  references (either explicitly or derived from a DTD);
* :mod:`repro.xmlmodel.dtd` — DTD parsing and validation.
"""

from repro.xmlmodel.model import (
    Attribute,
    Document,
    Element,
    Node,
    RefEntry,
    Reference,
    Text,
)
from repro.xmlmodel.policy import RefPolicy
from repro.xmlmodel.parser import parse, parse_file
from repro.xmlmodel.serializer import serialize
from repro.xmlmodel.dtd import Dtd, parse_dtd

__all__ = [
    "Attribute",
    "Document",
    "Dtd",
    "Element",
    "Node",
    "RefEntry",
    "Reference",
    "RefPolicy",
    "Text",
    "parse",
    "parse_dtd",
    "parse_file",
    "serialize",
]
