"""DTD parsing, content models, and document validation.

The relational mapping layer (Section 5.1) relies on the DTD in two
ways: the Shared Inlining schema generator asks, for each parent/child
pair, whether the child can occur *at most once* per parent (then it is
inlined) or *many times* (then it gets its own table); and the
:class:`~repro.xmlmodel.policy.RefPolicy` reads ID/IDREF/IDREFS typing
from ATTLIST declarations.

Supported declarations: ``<!ELEMENT>`` with EMPTY, ANY, ``(#PCDATA)``,
mixed content ``(#PCDATA | a | b)*``, and children content models built
from sequences ``,``, choices ``|``, groups, and the occurrence
indicators ``?``, ``*``, ``+``; ``<!ATTLIST>`` with CDATA, ID, IDREF,
IDREFS, NMTOKEN(S) and enumerated types, and the ``#REQUIRED`` /
``#IMPLIED`` / ``#FIXED`` / literal defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.errors import DtdError, ValidationError
from repro.xmlmodel.model import Document, Element, Text

# Cardinality of a child element relative to its parent.
CARD_ONE = "one"  # exactly once
CARD_OPTIONAL = "optional"  # at most once
CARD_MANY = "many"  # possibly repeated


# ----------------------------------------------------------------------
# Content model AST
# ----------------------------------------------------------------------
@dataclass
class NameParticle:
    """A child element name with an occurrence indicator ('', '?', '*', '+')."""

    name: str
    occurrence: str = ""


@dataclass
class GroupParticle:
    """A sequence (',') or choice ('|') of particles with an occurrence."""

    combinator: str  # ',' or '|'
    particles: list[Union["NameParticle", "GroupParticle"]]
    occurrence: str = ""


Particle = Union[NameParticle, GroupParticle]


@dataclass
class ContentModel:
    """Content model of one element declaration.

    ``kind`` is one of ``'EMPTY'``, ``'ANY'``, ``'PCDATA'`` (text-only),
    ``'MIXED'`` (text plus the names in ``mixed_names``), or
    ``'CHILDREN'`` (structured; ``root`` holds the particle tree).
    """

    kind: str
    root: Optional[GroupParticle] = None
    mixed_names: tuple[str, ...] = ()

    def child_names(self) -> list[str]:
        """All element names that may appear as direct children, in
        first-appearance order."""
        if self.kind == "MIXED":
            return list(self.mixed_names)
        if self.kind != "CHILDREN" or self.root is None:
            return []
        seen: dict[str, None] = {}
        for particle in _iter_names(self.root):
            seen.setdefault(particle.name, None)
        return list(seen)

    def child_cardinalities(self) -> dict[str, str]:
        """Map each possible child name to CARD_ONE/CARD_OPTIONAL/CARD_MANY.

        This is the decision procedure Shared Inlining uses: a child is
        inlinable into its parent's relation iff its cardinality is
        ``one`` or ``optional``.
        """
        if self.kind == "MIXED":
            return {name: CARD_MANY for name in self.mixed_names}
        if self.kind != "CHILDREN" or self.root is None:
            return {}
        counts: dict[str, tuple[int, int]] = {}  # name -> (min, max), max capped at 2
        _accumulate(self.root, 1, 1, counts)
        cardinalities: dict[str, str] = {}
        for name, (minimum, maximum) in counts.items():
            if maximum > 1:
                cardinalities[name] = CARD_MANY
            elif minimum >= 1:
                cardinalities[name] = CARD_ONE
            else:
                cardinalities[name] = CARD_OPTIONAL
        return cardinalities


def _iter_names(particle: Particle) -> Iterator[NameParticle]:
    if isinstance(particle, NameParticle):
        yield particle
        return
    for child in particle.particles:
        yield from _iter_names(child)


def _occurrence_bounds(occurrence: str) -> tuple[int, int]:
    """(min, max) multiplicity for an occurrence indicator; max 2 means 'many'."""
    if occurrence == "?":
        return 0, 1
    if occurrence == "*":
        return 0, 2
    if occurrence == "+":
        return 1, 2
    return 1, 1


def _accumulate(
    particle: Particle,
    outer_min: int,
    outer_max: int,
    counts: dict[str, tuple[int, int]],
) -> None:
    """Fold per-name (min, max) occurrence bounds through the particle tree."""
    occ_min, occ_max = _occurrence_bounds(getattr(particle, "occurrence", ""))
    eff_min = min(outer_min * occ_min, 2)
    eff_max = min(outer_max * occ_max, 2)
    if isinstance(particle, NameParticle):
        old_min, old_max = counts.get(particle.name, (0, 0))
        if old_max > 0:
            # The name appears in more than one position: it may repeat.
            counts[particle.name] = (min(old_min + eff_min, 2), 2)
        else:
            counts[particle.name] = (eff_min, eff_max)
        return
    for child in particle.particles:
        if particle.combinator == "|":
            # Under a choice each alternative may be skipped entirely.
            _accumulate(child, 0, eff_max, counts)
        else:
            _accumulate(child, eff_min, eff_max, counts)


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass
class ElementDecl:
    name: str
    content: ContentModel


@dataclass
class AttributeDecl:
    name: str
    attr_type: str  # CDATA | ID | IDREF | IDREFS | NMTOKEN | NMTOKENS | ENUM
    default: str  # '#REQUIRED' | '#IMPLIED' | '#FIXED' | 'LITERAL'
    default_value: Optional[str] = None
    enum_values: tuple[str, ...] = ()


@dataclass
class Dtd:
    """A parsed DTD: element declarations plus per-element ATTLISTs."""

    elements: dict[str, ElementDecl] = field(default_factory=dict)
    attributes: dict[str, dict[str, AttributeDecl]] = field(default_factory=dict)

    def element(self, name: str) -> ElementDecl:
        try:
            return self.elements[name]
        except KeyError:
            raise DtdError(f"no <!ELEMENT> declaration for {name!r}") from None

    def attlist(self, element_name: str) -> dict[str, AttributeDecl]:
        return self.attributes.get(element_name, {})

    def root_candidates(self) -> list[str]:
        """Declared elements that never appear as a child of another."""
        referenced: set[str] = set()
        for decl in self.elements.values():
            referenced.update(decl.content.child_names())
        return [name for name in self.elements if name not in referenced]

    def id_attribute_name(self) -> Optional[str]:
        """The (single) attribute name declared with type ID, if consistent."""
        names = {
            attribute.name
            for attlist in self.attributes.values()
            for attribute in attlist.values()
            if attribute.attr_type == "ID"
        }
        if len(names) == 1:
            return names.pop()
        return None


# ----------------------------------------------------------------------
# DTD parsing
# ----------------------------------------------------------------------
class _DtdScanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def skip_whitespace(self) -> None:
        while not self.at_end() and self.peek().isspace():
            self.pos += 1

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise DtdError(
                f"expected {token!r} near ...{self.text[self.pos:self.pos + 30]!r}"
            )
        self.pos += len(token)

    def read_until(self, token: str, description: str) -> str:
        end = self.text.find(token, self.pos)
        if end == -1:
            raise DtdError(f"unterminated {description}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(token)
        return chunk

    def read_name(self) -> str:
        self.skip_whitespace()
        start = self.pos
        while not self.at_end() and (self.peek().isalnum() or self.peek() in "_:-.#"):
            self.pos += 1
        if start == self.pos:
            raise DtdError(
                f"expected a name near ...{self.text[self.pos:self.pos + 30]!r}"
            )
        return self.text[start : self.pos]


def parse_dtd(text: str) -> Dtd:
    """Parse an internal DTD subset (the text between '[' and ']')."""
    dtd = Dtd()
    scanner = _DtdScanner(text)
    while True:
        scanner.skip_whitespace()
        if scanner.at_end():
            return dtd
        if scanner.startswith("<!--"):
            scanner.pos += 4
            scanner.read_until("-->", "comment")
        elif scanner.startswith("<!ELEMENT"):
            scanner.pos += len("<!ELEMENT")
            _parse_element_decl(scanner, dtd)
        elif scanner.startswith("<!ATTLIST"):
            scanner.pos += len("<!ATTLIST")
            _parse_attlist_decl(scanner, dtd)
        elif scanner.startswith("<!ENTITY"):
            raise DtdError("entity declarations are not supported")
        else:
            raise DtdError(
                f"unrecognised DTD content near ...{text[scanner.pos:scanner.pos + 30]!r}"
            )


def _parse_element_decl(scanner: _DtdScanner, dtd: Dtd) -> None:
    name = scanner.read_name()
    scanner.skip_whitespace()
    content = _parse_content_model(scanner)
    scanner.skip_whitespace()
    scanner.expect(">")
    if name in dtd.elements:
        raise DtdError(f"duplicate <!ELEMENT> declaration for {name!r}")
    dtd.elements[name] = ElementDecl(name, content)


def _parse_content_model(scanner: _DtdScanner) -> ContentModel:
    scanner.skip_whitespace()
    if scanner.startswith("EMPTY"):
        scanner.pos += len("EMPTY")
        return ContentModel("EMPTY")
    if scanner.startswith("ANY"):
        scanner.pos += len("ANY")
        return ContentModel("ANY")
    if not scanner.startswith("("):
        raise DtdError("expected '(' to open a content model")
    # Peek inside for #PCDATA to distinguish text/mixed from children.
    saved = scanner.pos
    scanner.pos += 1
    scanner.skip_whitespace()
    if scanner.startswith("#PCDATA"):
        scanner.pos += len("#PCDATA")
        names: list[str] = []
        while True:
            scanner.skip_whitespace()
            if scanner.startswith(")"):
                scanner.pos += 1
                break
            scanner.expect("|")
            names.append(scanner.read_name())
        if scanner.startswith("*"):
            scanner.pos += 1
        elif names:
            raise DtdError("mixed content with names must end with ')*'")
        if names:
            return ContentModel("MIXED", mixed_names=tuple(names))
        return ContentModel("PCDATA")
    scanner.pos = saved
    group = _parse_group(scanner)
    return ContentModel("CHILDREN", root=group)


def _parse_group(scanner: _DtdScanner) -> GroupParticle:
    scanner.expect("(")
    particles: list[Particle] = [_parse_particle(scanner)]
    combinator = ""
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch == ")":
            scanner.pos += 1
            break
        if ch not in ",|":
            raise DtdError(f"expected ',', '|' or ')' in content model, found {ch!r}")
        if combinator and ch != combinator:
            raise DtdError("cannot mix ',' and '|' at the same group level")
        combinator = ch
        scanner.pos += 1
        particles.append(_parse_particle(scanner))
    occurrence = ""
    if scanner.peek() in "?*+":
        occurrence = scanner.peek()
        scanner.pos += 1
    return GroupParticle(combinator or ",", particles, occurrence)


def _parse_particle(scanner: _DtdScanner) -> Particle:
    scanner.skip_whitespace()
    if scanner.startswith("("):
        return _parse_group(scanner)
    name = scanner.read_name()
    occurrence = ""
    if scanner.peek() in "?*+":
        occurrence = scanner.peek()
        scanner.pos += 1
    return NameParticle(name, occurrence)


_ATTR_TYPES = ("CDATA", "IDREFS", "IDREF", "ID", "NMTOKENS", "NMTOKEN", "ENTITY", "NOTATION")


def _parse_attlist_decl(scanner: _DtdScanner, dtd: Dtd) -> None:
    element_name = scanner.read_name()
    attlist = dtd.attributes.setdefault(element_name, {})
    while True:
        scanner.skip_whitespace()
        if scanner.startswith(">"):
            scanner.pos += 1
            return
        attr_name = scanner.read_name()
        scanner.skip_whitespace()
        attr_type = "ENUM"
        enum_values: tuple[str, ...] = ()
        matched = False
        for candidate in _ATTR_TYPES:
            if scanner.startswith(candidate):
                scanner.pos += len(candidate)
                attr_type = candidate
                matched = True
                break
        if not matched:
            if not scanner.startswith("("):
                raise DtdError(f"unknown attribute type for {attr_name!r}")
            scanner.pos += 1
            raw = scanner.read_until(")", "enumerated attribute type")
            enum_values = tuple(value.strip() for value in raw.split("|"))
        scanner.skip_whitespace()
        default = "LITERAL"
        default_value: Optional[str] = None
        if scanner.startswith("#REQUIRED"):
            scanner.pos += len("#REQUIRED")
            default = "#REQUIRED"
        elif scanner.startswith("#IMPLIED"):
            scanner.pos += len("#IMPLIED")
            default = "#IMPLIED"
        elif scanner.startswith("#FIXED"):
            scanner.pos += len("#FIXED")
            default = "#FIXED"
            scanner.skip_whitespace()
            default_value = _read_quoted(scanner)
        else:
            default_value = _read_quoted(scanner)
        attlist[attr_name] = AttributeDecl(
            attr_name, attr_type, default, default_value, enum_values
        )


def _read_quoted(scanner: _DtdScanner) -> str:
    quote = scanner.peek()
    if quote not in "\"'":
        raise DtdError("expected a quoted default value")
    scanner.pos += 1
    return scanner.read_until(quote, "attribute default")


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def validate(document: Document, dtd: Dtd) -> None:
    """Check the document against the DTD; raise ValidationError on the
    first violation.

    Checks element content models (including sequencing), attribute
    presence for ``#REQUIRED``, enumerated value membership, ID
    uniqueness, and IDREF target existence.
    """
    ids_seen: set[str] = set()
    idrefs: list[tuple[str, str]] = []  # (element name, target id)
    for element in document.root.iter_descendants(include_self=True):
        _validate_element(element, dtd, ids_seen, idrefs)
    for element_name, target in idrefs:
        if target not in ids_seen:
            raise ValidationError(
                f"IDREF on <{element_name}> points at undeclared ID {target!r}"
            )


def _validate_element(
    element: Element,
    dtd: Dtd,
    ids_seen: set[str],
    idrefs: list[tuple[str, str]],
) -> None:
    decl = dtd.elements.get(element.name)
    if decl is None:
        raise ValidationError(f"element <{element.name}> is not declared in the DTD")
    _validate_content(element, decl.content)
    attlist = dtd.attlist(element.name)
    for attr_name, attr_decl in attlist.items():
        present = (
            attr_name in element.attributes or attr_name in element.references
        )
        if attr_decl.default == "#REQUIRED" and not present:
            raise ValidationError(
                f"required attribute {attr_name!r} missing on <{element.name}>"
            )
        if attr_decl.attr_type == "ID" and attr_name in element.attributes:
            value = element.attributes[attr_name].value
            if value in ids_seen:
                raise ValidationError(f"duplicate ID value {value!r}")
            ids_seen.add(value)
        if attr_decl.attr_type in ("IDREF", "IDREFS"):
            reference = element.references.get(attr_name)
            if reference is not None:
                for target in reference.targets:
                    idrefs.append((element.name, target))
        if attr_decl.enum_values and attr_name in element.attributes:
            value = element.attributes[attr_name].value
            if value not in attr_decl.enum_values:
                raise ValidationError(
                    f"attribute {attr_name!r} on <{element.name}> has value "
                    f"{value!r}, not one of {attr_decl.enum_values}"
                )
    for attr_name in list(element.attributes) + list(element.references):
        if attr_name not in attlist:
            raise ValidationError(
                f"attribute {attr_name!r} on <{element.name}> is not declared"
            )


def _validate_content(element: Element, content: ContentModel) -> None:
    child_tags = [
        child.name for child in element.children if isinstance(child, Element)
    ]
    has_text = any(
        isinstance(child, Text) and child.value.strip() for child in element.children
    )
    if content.kind == "EMPTY":
        if element.children:
            raise ValidationError(f"element <{element.name}> must be EMPTY")
        return
    if content.kind == "ANY":
        return
    if content.kind == "PCDATA":
        if child_tags:
            raise ValidationError(
                f"element <{element.name}> allows only PCDATA, found <{child_tags[0]}>"
            )
        return
    if content.kind == "MIXED":
        allowed = set(content.mixed_names)
        for tag in child_tags:
            if tag not in allowed:
                raise ValidationError(
                    f"element <{tag}> is not allowed inside mixed <{element.name}>"
                )
        return
    # CHILDREN: no significant text allowed; sequence must match the model.
    if has_text:
        raise ValidationError(
            f"element <{element.name}> has element content but contains PCDATA"
        )
    assert content.root is not None
    if not _matches(content.root, child_tags, 0, {}) :
        raise ValidationError(
            f"children of <{element.name}> ({child_tags}) do not match its content model"
        )


def _matches(
    particle: GroupParticle,
    tags: list[str],
    start: int,
    memo: dict[tuple[int, int], set[int]],
) -> bool:
    """True iff some prefix match of ``particle`` consumes tags[start:] fully."""
    return len(tags) in _match_positions(particle, tags, start, memo)


def _match_positions(
    particle: Particle,
    tags: list[str],
    start: int,
    memo: dict[tuple[int, int], set[int]],
) -> set[int]:
    """All positions reachable after matching ``particle`` once-or-per-occurrence
    starting at ``start`` (classic Thompson-style set simulation)."""
    key = (id(particle), start)
    if key in memo:
        return memo[key]
    memo[key] = set()  # cycle guard for degenerate models
    base = _match_once_positions(particle, tags, start, memo)
    occurrence = getattr(particle, "occurrence", "")
    result: set[int] = set()
    if occurrence in ("?", "*"):
        result.add(start)
    result |= base
    if occurrence in ("*", "+"):
        frontier = set(base)
        while frontier:
            position = frontier.pop()
            for next_position in _match_once_positions(particle, tags, position, memo):
                if next_position not in result:
                    result.add(next_position)
                    frontier.add(next_position)
    memo[key] = result
    return result


def _match_once_positions(
    particle: Particle,
    tags: list[str],
    start: int,
    memo: dict[tuple[int, int], set[int]],
) -> set[int]:
    if isinstance(particle, NameParticle):
        if start < len(tags) and tags[start] == particle.name:
            return {start + 1}
        return set()
    if particle.combinator == "|":
        positions: set[int] = set()
        for child in particle.particles:
            positions |= _match_positions(child, tags, start, memo)
        return positions
    # Sequence: thread position sets through each child in order.
    current = {start}
    for child in particle.particles:
        next_positions: set[int] = set()
        for position in current:
            next_positions |= _match_positions(child, tags, position, memo)
        current = next_positions
        if not current:
            return set()
    return current
