"""A from-scratch XML 1.0 subset parser producing model trees.

Supported syntax: the XML declaration, comments, processing
instructions, a ``<!DOCTYPE ...>`` with an optional internal DTD subset
(handed to :mod:`repro.xmlmodel.dtd`), elements with attributes,
self-closing tags, CDATA sections, character references (decimal and
hex), and the five predefined entities.

Unsupported (raises :class:`~repro.errors.XmlParseError`): external
entities, parameter entities in document content, namespaces-as-scoping
(colons in names are allowed but treated as opaque characters).

Whitespace-only text between elements is dropped unless
``preserve_space=True``; this matches how the paper's documents are
written (pretty-printed element content).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import XmlParseError
from repro.xmlmodel import dtd as dtd_module
from repro.xmlmodel.model import Document, Element, Text
from repro.xmlmodel.policy import ATTR_ID, ATTR_IDREF, ATTR_IDREFS, RefPolicy

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:-."


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Scanner:
    """Character cursor with line/column tracking over the input text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def location(self) -> tuple[int, int]:
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str) -> XmlParseError:
        line, column = self.location()
        return XmlParseError(message, line=line, column=column)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while not self.at_end() and self.peek().isspace():
            self.pos += 1

    def read_until(self, token: str, description: str) -> str:
        end = self.text.find(token, self.pos)
        if end == -1:
            raise self.error(f"unterminated {description}: missing {token!r}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(token)
        return chunk

    def read_name(self) -> str:
        if self.at_end() or not _is_name_start(self.peek()):
            raise self.error("expected a name")
        start = self.pos
        self.pos += 1
        while not self.at_end() and _is_name_char(self.peek()):
            self.pos += 1
        return self.text[start : self.pos]


class XmlParser:
    """Recursive-descent parser; one instance parses one document."""

    def __init__(
        self,
        text: str,
        policy: Optional[RefPolicy] = None,
        preserve_space: bool = False,
    ) -> None:
        self._scanner = _Scanner(text)
        self._policy = policy
        self._preserve_space = preserve_space
        self._dtd: Optional[dtd_module.Dtd] = None

    def parse(self) -> Document:
        """Parse the full document and return a :class:`Document`.

        If no policy was given and the document carries an internal DTD,
        the policy is derived from the DTD's ATTLIST declarations.
        """
        self._parse_prolog()
        if self._policy is None:
            if self._dtd is not None:
                self._policy = RefPolicy.from_dtd(self._dtd)
            else:
                self._policy = RefPolicy.default()
        scanner = self._scanner
        scanner.skip_whitespace()
        if not scanner.startswith("<"):
            raise scanner.error("expected root element")
        root = self._parse_element()
        self._parse_misc_trailer()
        document = Document(root, id_attribute=self._policy.id_attribute)
        document.dtd = self._dtd  # type: ignore[attr-defined]
        return document

    # ------------------------------------------------------------------
    # Prolog / misc
    # ------------------------------------------------------------------
    def _parse_prolog(self) -> None:
        scanner = self._scanner
        scanner.skip_whitespace()
        if scanner.startswith("<?xml"):
            scanner.read_until("?>", "XML declaration")
        while True:
            scanner.skip_whitespace()
            if scanner.startswith("<!--"):
                scanner.advance(4)
                scanner.read_until("-->", "comment")
            elif scanner.startswith("<!DOCTYPE"):
                self._parse_doctype()
            elif scanner.startswith("<?"):
                scanner.advance(2)
                scanner.read_until("?>", "processing instruction")
            else:
                return

    def _parse_doctype(self) -> None:
        scanner = self._scanner
        scanner.expect("<!DOCTYPE")
        scanner.skip_whitespace()
        scanner.read_name()  # document element name; not enforced here
        scanner.skip_whitespace()
        if scanner.startswith("SYSTEM") or scanner.startswith("PUBLIC"):
            raise scanner.error("external DTD subsets are not supported")
        if scanner.startswith("["):
            scanner.advance(1)
            subset = scanner.read_until("]", "internal DTD subset")
            self._dtd = dtd_module.parse_dtd(subset)
            scanner.skip_whitespace()
        scanner.expect(">")

    def _parse_misc_trailer(self) -> None:
        scanner = self._scanner
        while True:
            scanner.skip_whitespace()
            if scanner.at_end():
                return
            if scanner.startswith("<!--"):
                scanner.advance(4)
                scanner.read_until("-->", "comment")
            elif scanner.startswith("<?"):
                scanner.advance(2)
                scanner.read_until("?>", "processing instruction")
            else:
                raise scanner.error("content after the root element")

    # ------------------------------------------------------------------
    # Elements and content
    # ------------------------------------------------------------------
    def _parse_element(self) -> Element:
        scanner = self._scanner
        scanner.expect("<")
        name = scanner.read_name()
        element = Element(name)
        self._parse_attributes(element)
        if scanner.startswith("/>"):
            scanner.advance(2)
            return element
        scanner.expect(">")
        self._parse_content(element)
        closing = scanner.read_name()
        if closing != name:
            raise scanner.error(
                f"mismatched closing tag: expected </{name}>, found </{closing}>"
            )
        scanner.skip_whitespace()
        scanner.expect(">")
        return element

    def _parse_attributes(self, element: Element) -> None:
        scanner = self._scanner
        assert self._policy is not None
        while True:
            scanner.skip_whitespace()
            if scanner.at_end() or scanner.peek() in "/>":
                return
            attr_name = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect("=")
            scanner.skip_whitespace()
            value = self._parse_attribute_value()
            kind = self._policy.classify(element.name, attr_name)
            if kind in (ATTR_IDREF, ATTR_IDREFS):
                for target in value.split():
                    element.add_reference(attr_name, target)
            else:
                # IDs are stored as plain attributes; Document indexes them.
                if attr_name in element.attributes:
                    raise scanner.error(
                        f"duplicate attribute {attr_name!r} on element <{element.name}>"
                    )
                element.set_attribute(attr_name, value)
                del kind  # ATTR_ID vs ATTR_CDATA both stored identically

    def _parse_attribute_value(self) -> str:
        scanner = self._scanner
        quote = scanner.peek()
        if quote not in "\"'":
            raise scanner.error("expected a quoted attribute value")
        scanner.advance(1)
        raw = scanner.read_until(quote, "attribute value")
        if "<" in raw:
            raise scanner.error("'<' is not allowed inside an attribute value")
        return self._expand_entities(raw)

    def _parse_content(self, element: Element) -> None:
        scanner = self._scanner
        text_parts: list[str] = []

        def flush_text() -> None:
            if not text_parts:
                return
            value = "".join(text_parts)
            text_parts.clear()
            if self._preserve_space or value.strip():
                element.append_child(Text(value))

        while True:
            if scanner.at_end():
                raise scanner.error(f"unexpected end of input inside <{element.name}>")
            if scanner.startswith("</"):
                flush_text()
                scanner.advance(2)
                return
            if scanner.startswith("<!--"):
                flush_text()
                scanner.advance(4)
                scanner.read_until("-->", "comment")
            elif scanner.startswith("<![CDATA["):
                # CDATA content is literal: no entity expansion applies.
                scanner.advance(9)
                text_parts.append(scanner.read_until("]]>", "CDATA section"))
            elif scanner.startswith("<?"):
                flush_text()
                scanner.advance(2)
                scanner.read_until("?>", "processing instruction")
            elif scanner.startswith("<"):
                flush_text()
                element.append_child(self._parse_element())
            elif scanner.peek() == "&":
                scanner.advance(1)
                entity = scanner.read_until(";", "entity reference")
                text_parts.append(self._resolve_entity(entity))
            else:
                text_parts.append(scanner.advance(1))

    # ------------------------------------------------------------------
    # Entities
    # ------------------------------------------------------------------
    def _expand_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        parts: list[str] = []
        index = 0
        while index < len(raw):
            ch = raw[index]
            if ch != "&":
                parts.append(ch)
                index += 1
                continue
            end = raw.find(";", index + 1)
            if end == -1:
                raise self._scanner.error("unterminated entity reference")
            entity = raw[index + 1 : end]
            parts.append(self._resolve_entity(entity))
            index = end + 1
        return "".join(parts)

    def _resolve_entity(self, entity: str) -> str:
        if entity.startswith("#x") or entity.startswith("#X"):
            try:
                return chr(int(entity[2:], 16))
            except ValueError:
                raise self._scanner.error(f"bad character reference &{entity};") from None
        if entity.startswith("#"):
            try:
                return chr(int(entity[1:]))
            except ValueError:
                raise self._scanner.error(f"bad character reference &{entity};") from None
        expansion = _PREDEFINED_ENTITIES.get(entity)
        if expansion is None:
            raise self._scanner.error(f"unknown entity &{entity};")
        return expansion


def parse(
    text: str,
    policy: Optional[RefPolicy] = None,
    preserve_space: bool = False,
) -> Document:
    """Parse XML text into a :class:`~repro.xmlmodel.model.Document`.

    ``policy`` controls ID/IDREF/IDREFS classification; when omitted it
    is derived from the document's internal DTD if present, otherwise
    only attributes named ``ID`` are treated as IDs.
    """
    return XmlParser(text, policy=policy, preserve_space=preserve_space).parse()


def parse_file(
    path: str,
    policy: Optional[RefPolicy] = None,
    preserve_space: bool = False,
) -> Document:
    """Parse the XML document stored at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read(), policy=policy, preserve_space=preserve_space)
