"""Serialize model trees back to XML text.

The serializer writes attributes first (in canonical sorted-name order;
attributes are unordered in the data model, so a deterministic order is
chosen rather than preserved), then reference lists (IDREFS rendered as
space-separated ID values), then children.  With ``indent`` set,
elements with element-only content are pretty-printed; mixed content is
written inline to preserve PCDATA.

Escaping is round-trip safe under XML 1.0 normalization: a conformant
parser replaces literal tabs and newlines in attribute values with
spaces (attribute-value normalization, XML 1.0 §3.3.3) and folds
``\\r``/``\\r\\n`` in text to ``\\n`` (end-of-line handling, §2.11), so
those characters are emitted as character references (``&#9;``,
``&#10;``, ``&#13;``), which survive both normalizations.
"""

from __future__ import annotations

from typing import Union

from repro.xmlmodel.model import Document, Element, Text


def _escape_text(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace("\r", "&#13;")
    )


def _escape_attribute(value: str) -> str:
    return (
        _escape_text(value)
        .replace('"', "&quot;")
        .replace("\t", "&#9;")
        .replace("\n", "&#10;")
    )


def _format_start_tag(element: Element) -> str:
    # Attributes are unordered in the data model (Section 3.1), so the
    # serializer emits them in a canonical (sorted) order; reference
    # lists keep their internal entry order, which IS meaningful.
    parts = [element.name]
    for name in sorted(element.attributes):
        attribute = element.attributes[name]
        parts.append(f'{attribute.name}="{_escape_attribute(attribute.value)}"')
    for name in sorted(element.references):
        reference = element.references[name]
        joined = " ".join(reference.targets)
        parts.append(f'{reference.name}="{_escape_attribute(joined)}"')
    return " ".join(parts)


def _has_element_children(element: Element) -> bool:
    return any(isinstance(child, Element) for child in element.children)


def _has_text_children(element: Element) -> bool:
    return any(isinstance(child, Text) for child in element.children)


def _serialize_element(element: Element, indent: int, depth: int, out: list[str]) -> None:
    pad = " " * (indent * depth) if indent else ""
    start = _format_start_tag(element)
    if not element.children:
        out.append(f"{pad}<{start}/>")
        return
    pretty = indent > 0 and _has_element_children(element) and not _has_text_children(element)
    if pretty:
        out.append(f"{pad}<{start}>")
        for child in element.children:
            _serialize_element(child, indent, depth + 1, out)  # type: ignore[arg-type]
        out.append(f"{pad}</{element.name}>")
        return
    inline: list[str] = [f"{pad}<{start}>"]
    for child in element.children:
        if isinstance(child, Text):
            inline.append(_escape_text(child.value))
        else:
            nested: list[str] = []
            _serialize_element(child, 0, 0, nested)
            inline.append("".join(nested))
    inline.append(f"</{element.name}>")
    out.append("".join(inline))


def serialize(node: Union[Document, Element], indent: int = 2) -> str:
    """Render a document or element subtree as XML text.

    ``indent=0`` produces a single line with no inter-element whitespace
    (a canonical-ish form convenient for equality checks in tests).
    """
    element = node.root if isinstance(node, Document) else node
    out: list[str] = []
    _serialize_element(element, indent, 0, out)
    separator = "\n" if indent else ""
    return separator.join(out)
