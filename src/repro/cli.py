"""Command-line interface: query, update, validate, and explore documents.

Usage::

    python -m repro query    --xml doc.xml [--dtd doc.dtd] 'FOR ... RETURN $x'
    python -m repro update   --xml doc.xml [--dtd doc.dtd] 'FOR ... UPDATE ...'
                             [--backend memory|sqlite] [--output new.xml]
                             [--delete-method NAME] [--insert-method NAME]
                             [--typecheck]
    python -m repro validate --xml doc.xml --dtd doc.dtd
    python -m repro shell    --xml doc.xml [--dtd doc.dtd]
    python -m repro serve    --xml doc.xml --wal doc.wal [--batch-size N]
                             [--checkpoint-every N] [--checkpoint-bytes N]
                             [--checkpoint-dir DIR] [--trace-out spans.json]
                             [--listen HOST:PORT [--async]
                              [--max-connections N]
                              [--max-inflight N] [--port-file FILE]]
    python -m repro connect  --addr HOST:PORT [--doc NAME] [--timeout S]
                             [--stats | --checkpoint | --exec STMT ...]
    python -m repro replay   --xml doc.xml --wal doc.wal [--output new.xml]
                             [--checkpoint-dir DIR] [--trace-out spans.json]
    python -m repro checkpoint --xml doc.xml --wal doc.wal
                             [--checkpoint-dir DIR] [--full]
    python -m repro stats    [--xml doc.xml [--dtd doc.dtd] --exec STMT ...]
                             [--json]

The document name visible to ``document("...")`` inside statements is
the XML file's basename (override with ``--name``).

``serve`` runs the durable update service over the document: update
statements read from stdin (one per line) are executed, converted to
deltas, group-committed through the write-ahead log, and applied;
``--checkpoint-every`` / ``--checkpoint-bytes`` arm the automatic
checkpoint policy (snapshot the state, retire covered WAL segments).
With ``--listen HOST:PORT`` the service is additionally fronted by the
framed TCP protocol (:mod:`repro.service.net`) and stdin becomes a
control console (add ``--async`` for the asyncio front end: pipelined
frames, streamed responses, 10k+ connections); ``connect`` is the
matching client — statements are
executed *server-side* (reads under the read lock, updates through the
scratch-copy → diff → group-commit pipeline).
``replay`` recovers a crashed service's WAL — restoring the last
checkpoint snapshot first, when one exists — against the base document.
``checkpoint`` recovers the WAL the same way and then takes one
checkpoint, leaving a snapshot plus an empty live segment behind.

``stats`` prints a live snapshot of the process metrics registry
(``repro.obs``); with ``--exec`` it runs statements first so the
snapshot shows their per-phase counts.  ``--trace-out`` on ``serve``
and ``replay`` captures hierarchical phase spans (parse, translate,
execute, fsync, ...) and writes them as JSON on exit.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from repro.errors import ReproError
from repro.relational.store import XmlStore
from repro.updates.typecheck import typecheck
from repro.xmlmodel import parse_dtd, parse_file, serialize
from repro.xmlmodel.dtd import validate
from repro.xmlmodel.policy import RefPolicy
from repro.xquery.engine import QueryResult, XQueryEngine


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XQuery-with-updates over XML documents "
        "(reproduction of 'Updating XML', SIGMOD 2001)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser, needs_dtd: bool = False) -> None:
        sub.add_argument("--xml", required=True, help="XML document file")
        sub.add_argument("--dtd", required=needs_dtd, help="DTD file")
        sub.add_argument(
            "--name",
            help="name exposed to document(...) (default: the XML basename)",
        )

    query = commands.add_parser("query", help="run a FLWR statement")
    add_common(query)
    query.add_argument("statement", help="the XQuery statement")

    update = commands.add_parser("update", help="run a FLWU update statement")
    add_common(update)
    update.add_argument("statement", help="the XQuery update statement")
    update.add_argument(
        "--backend",
        choices=("memory", "sqlite"),
        default="memory",
        help="execute in memory or through the relational store "
        "(sqlite requires --dtd)",
    )
    update.add_argument("--output", help="write the updated document here")
    update.add_argument(
        "--delete-method",
        default="per_tuple_trigger",
        choices=("per_tuple_trigger", "per_statement_trigger", "cascade", "asr"),
    )
    update.add_argument(
        "--insert-method", default="table", choices=("tuple", "table", "asr")
    )
    update.add_argument(
        "--typecheck",
        action="store_true",
        help="trial-execute against the DTD first; abort on violations",
    )

    check = commands.add_parser("validate", help="validate a document against a DTD")
    add_common(check, needs_dtd=True)

    shell = commands.add_parser("shell", help="interactive statement loop")
    add_common(shell)

    serve = commands.add_parser(
        "serve", help="durable update service: statements from stdin via a WAL"
    )
    add_common(serve)
    serve.add_argument("--wal", required=True, help="write-ahead log file")
    serve.add_argument(
        "--batch-size", type=int, default=64, help="group-commit window (default 64)"
    )
    serve.add_argument(
        "--no-recover",
        action="store_true",
        help="skip replaying an existing WAL before serving",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="OPS",
        help="auto-checkpoint after this many applied operations",
    )
    serve.add_argument(
        "--checkpoint-bytes",
        type=int,
        metavar="BYTES",
        help="auto-checkpoint once the live WAL segment holds this many bytes",
    )
    serve.add_argument(
        "--checkpoint-dir",
        help="snapshot directory (default: <wal>.ckpt)",
    )
    serve.add_argument(
        "--trace-out", help="write hierarchical trace spans (JSON) here on exit"
    )
    serve.add_argument(
        "--query-workers",
        type=int,
        default=4,
        help="threads executing read queries concurrently (default 4)",
    )
    serve.add_argument(
        "--readers",
        type=int,
        default=4,
        help="snapshot reader connections per store host; 0 serialises "
        "reads behind the writer lock (default 4)",
    )
    serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="serve the framed TCP protocol on this address "
        "(port 0 picks a free port); stdin stays a control console "
        "(:quit, :checkpoint, :stats)",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=64,
        help="admission control: concurrent connection limit (default 64)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="admission control: per-connection async ops in flight "
        "(default 64)",
    )
    serve.add_argument(
        "--async",
        dest="async_server",
        action="store_true",
        help="with --listen: serve on the asyncio front end (pipelined "
        "frames, 10k+ connections) instead of thread-per-connection",
    )
    serve.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="with --listen: spawn N shard worker processes (each a full "
        "service over its own WAL under shard-<k>/) behind a routing "
        "front end; documents are hashed to shards by name",
    )
    serve.add_argument(
        "--shard-dir",
        help="with --shards: directory holding the shards.json manifest "
        "and the per-shard WAL/checkpoint trees (default: <wal>.shards)",
    )
    serve.add_argument(
        "--port-file",
        help="write the bound port here once listening (smoke tests; "
        "useful with --listen HOST:0)",
    )

    connect = commands.add_parser(
        "connect", help="client for a `serve --listen` server"
    )
    connect.add_argument(
        "--addr", required=True, metavar="HOST:PORT", help="server address"
    )
    connect.add_argument(
        "--doc", help="target document (default: the server's first hosted one)"
    )
    connect.add_argument(
        "--timeout", type=float, default=30.0, help="per-request timeout (seconds)"
    )
    connect.add_argument(
        "--stats", action="store_true", help="print server stats and exit"
    )
    connect.add_argument(
        "--checkpoint", action="store_true", help="force a checkpoint and exit"
    )
    connect.add_argument(
        "--exec",
        dest="statements",
        action="append",
        metavar="STATEMENT",
        default=[],
        help="run this statement server-side and exit (repeatable)",
    )

    rep = commands.add_parser(
        "replay", help="recover a WAL against the base document"
    )
    add_common(rep)
    rep.add_argument("--wal", required=True, help="write-ahead log file")
    rep.add_argument("--output", help="write the recovered document here")
    rep.add_argument(
        "--checkpoint-dir",
        help="snapshot directory (default: <wal>.ckpt)",
    )
    rep.add_argument(
        "--trace-out", help="write hierarchical trace spans (JSON) here on exit"
    )

    ckpt = commands.add_parser(
        "checkpoint",
        help="recover a WAL, snapshot the state, and retire covered segments",
    )
    add_common(ckpt)
    ckpt.add_argument("--wal", required=True, help="write-ahead log file")
    ckpt.add_argument(
        "--checkpoint-dir",
        help="snapshot directory (default: <wal>.ckpt)",
    )
    ckpt.add_argument(
        "--full",
        action="store_true",
        help="re-snapshot every document instead of carrying clean ones "
        "forward from the previous checkpoint",
    )

    stats = commands.add_parser(
        "stats", help="print a live snapshot of the process metrics registry"
    )
    stats.add_argument("--xml", help="XML document to run --exec statements against")
    stats.add_argument("--dtd", help="DTD file")
    stats.add_argument(
        "--name", help="name exposed to document(...) (default: the XML basename)"
    )
    stats.add_argument(
        "--exec",
        dest="statements",
        action="append",
        metavar="STATEMENT",
        default=[],
        help="run this statement before the snapshot (repeatable)",
    )
    stats.add_argument(
        "--json", action="store_true", help="emit the snapshot as JSON"
    )

    return parser


def _load(args) -> tuple[str, "Document", Optional["Dtd"], Optional[RefPolicy]]:
    from repro.xmlmodel.dtd import Dtd  # noqa: F401  (type comment aid)
    from repro.xmlmodel.model import Document  # noqa: F401

    dtd = None
    policy = None
    if args.dtd:
        with open(args.dtd, "r", encoding="utf-8") as handle:
            dtd = parse_dtd(handle.read())
        policy = RefPolicy.from_dtd(dtd)
    document = parse_file(args.xml, policy=policy)
    name = args.name or os.path.basename(args.xml)
    return name, document, dtd, policy


def cmd_query(args) -> int:
    name, document, _dtd, policy = _load(args)
    engine = XQueryEngine({name: document}, policy=policy)
    parsed = engine.parse(args.statement)
    if parsed.is_update:
        print("statement is an update; use `repro update`", file=sys.stderr)
        return 2
    result = engine.execute(parsed)
    assert isinstance(result, QueryResult)
    for node in result:
        from repro.xmlmodel.model import Element

        if isinstance(node, Element):
            print(serialize(node))
        else:
            from repro.xpath.evaluator import string_value

            print(string_value(node))
    print(f"-- {len(result)} result(s)", file=sys.stderr)
    return 0


def cmd_update(args) -> int:
    name, document, dtd, policy = _load(args)
    if args.typecheck:
        if dtd is None:
            print("--typecheck requires --dtd", file=sys.stderr)
            return 2
        issues = typecheck({name: document}, {name: dtd}, args.statement, policy=policy)
        for issue in issues:
            print(str(issue), file=sys.stderr)
        if any(issue.severity == "error" for issue in issues):
            print("typecheck failed; document not modified", file=sys.stderr)
            return 1
    if args.backend == "sqlite":
        if dtd is None:
            print("--backend sqlite requires --dtd", file=sys.stderr)
            return 2
        store = XmlStore.from_dtd(dtd, document_name=name)
        store.load(document)
        store.set_delete_method(args.delete_method)
        store.set_insert_method(args.insert_method)
        store.db.counts.reset()
        store.execute(args.statement)
        for warning in store.warnings:
            print(f"warning: {warning}", file=sys.stderr)
        print(
            f"-- {store.db.counts.client} SQL statement(s) "
            f"(+{store.db.counts.trigger_emulation} in trigger emulation)",
            file=sys.stderr,
        )
        results = store.query(
            f'FOR $d IN document("{name}")/{store.schema.relation(store.schema.root).tag} '
            "RETURN $d"
        )
        updated_text = serialize(results[0]) if results else ""
        store.close()
    else:
        engine = XQueryEngine({name: document}, policy=policy)
        result = engine.execute(args.statement)
        print(
            f"-- {result.bindings} binding(s), {result.operations} operation(s)",
            file=sys.stderr,
        )
        updated_text = serialize(document)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(updated_text + "\n")
        print(f"-- wrote {args.output}", file=sys.stderr)
    else:
        print(updated_text)
    return 0


def cmd_validate(args) -> int:
    name, document, dtd, _policy = _load(args)
    assert dtd is not None
    try:
        validate(document, dtd)
    except ReproError as error:
        print(f"INVALID: {error}")
        return 1
    print(f"{name}: valid")
    return 0


def cmd_shell(args) -> int:
    name, document, dtd, policy = _load(args)
    engine = XQueryEngine({name: document}, policy=policy)
    print(f"loaded {name} ({document.count_elements()} elements); "
          "end statements with an empty line; :quit to exit, :print to dump")
    buffer: list[str] = []
    while True:
        try:
            prompt = "....> " if buffer else "xqry> "
            line = input(prompt)
        except EOFError:
            print()
            return 0
        if line.strip() == ":quit":
            return 0
        if line.strip() == ":print":
            print(serialize(document))
            continue
        if line.strip():
            buffer.append(line)
            continue
        if not buffer:
            continue
        statement = "\n".join(buffer)
        buffer = []
        try:
            result = engine.execute(statement)
        except ReproError as error:
            print(f"error: {error}")
            continue
        if isinstance(result, QueryResult):
            for node in result:
                from repro.xmlmodel.model import Element

                if isinstance(node, Element):
                    print(serialize(node))
                else:
                    from repro.xpath.evaluator import string_value

                    print(string_value(node))
            print(f"-- {len(result)} result(s)")
        else:
            print(f"-- updated: {result.bindings} binding(s), "
                  f"{result.operations} operation(s)")


def cmd_serve(args) -> int:
    from repro.obs import get_tracer, span
    from repro.service import ServiceConfig, UpdateService
    from repro.updates.delta import diff
    from repro.xmlmodel.parser import XmlParser

    if args.shards:
        return _serve_shards(args)
    tracer = get_tracer()
    if args.trace_out:
        tracer.start_capture()
    name, document, _dtd, policy = _load(args)
    service = UpdateService(
        ServiceConfig(
            wal_path=args.wal,
            batch_size=args.batch_size,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every_ops=args.checkpoint_every,
            checkpoint_every_bytes=args.checkpoint_bytes,
            query_workers=args.query_workers,
            readers=args.readers,
        )
    )
    service.host_document(name, document, policy)
    if not args.no_recover:
        report = service.recover()
        if (
            report.applied
            or report.truncated_bytes
            or report.uncommitted
            or report.snapshot_docs
        ):
            print(f"-- recovery: {report.summary()}", file=sys.stderr)
    service.start()
    if args.listen:
        return _serve_listen(args, service, name)
    session = service.open_session()
    statements = 0
    print(
        f"-- serving {name} ({document.count_elements()} elements); "
        f"WAL {args.wal}, batch size {args.batch_size}; "
        "one statement per line, :quit to exit",
        file=sys.stderr,
    )
    try:
        for line in sys.stdin:
            statement = line.strip()
            if not statement:
                continue
            if statement == ":quit":
                break
            if statement == ":checkpoint":
                ckpt_report = service.checkpoint()
                print(f"-- {ckpt_report.summary()}", file=sys.stderr)
                continue
            try:
                parsed = XQueryEngine({}, policy=policy).parse(statement)
            except ReproError as error:
                print(f"error: {error}", file=sys.stderr)
                continue
            if not parsed.is_update:
                try:
                    result = service.query(
                        name, lambda host: _run_read_query(host, statement, policy)
                    )
                except ReproError as error:
                    print(f"error: {error}", file=sys.stderr)
                    continue
                for text in result:
                    print(text)
                print(f"-- {len(result)} result(s)", file=sys.stderr)
                continue
            # Execute against a scratch copy, diff, and submit the delta:
            # the WAL records the statement's *effect*, which replays
            # deterministically regardless of bindings.
            try:
                with span("serve.statement"):
                    working = XmlParser(serialize(document), policy=policy).parse()
                    XQueryEngine({name: working}, policy=policy).execute(parsed)
                    with span("delta.diff"):
                        delta = diff(document, working)
                    sequence = session.submit_wait(name, delta)
            except ReproError as error:
                print(f"error: {error}", file=sys.stderr)
                continue
            statements += 1
            print(
                f"-- durable seq {sequence}: {len(delta)} delta op(s)",
                file=sys.stderr,
            )
    finally:
        session.close()
        service.close()
        if args.trace_out:
            tracer.stop_capture()
            written = tracer.write_json(args.trace_out)
            print(f"-- wrote {written} trace span(s) to {args.trace_out}",
                  file=sys.stderr)
    print(f"-- served {statements} update statement(s); WAL at {args.wal}",
          file=sys.stderr)
    return 0


def _serve_listen(args, service, name: str) -> int:
    """`serve --listen`: front the service with the TCP protocol; stdin
    becomes a small control console instead of a statement stream."""
    from repro.obs import get_tracer
    from repro.service.net import AsyncNetServer, NetServer, parse_address

    host, port = parse_address(args.listen)
    server_cls = AsyncNetServer if args.async_server else NetServer
    server = server_cls(
        service,
        host,
        port,
        max_connections=args.max_connections,
        max_inflight=args.max_inflight,
        own_service=True,
    ).start()
    bound_host, bound_port = server.address
    transport = "asyncio" if args.async_server else "threaded"
    print(
        f"-- listening on {bound_host}:{bound_port} ({transport})",
        file=sys.stderr,
        flush=True,
    )
    if args.port_file:
        # Atomic (temp + rename): a polling reader either sees no file
        # or the complete port, never a created-but-empty window.
        from repro.service import write_port_file

        write_port_file(args.port_file, bound_port)
    try:
        for line in sys.stdin:
            command = line.strip()
            if command == ":quit":
                break
            if command == ":checkpoint":
                report = service.checkpoint()
                print(f"-- {report.summary()}", file=sys.stderr)
                if service.checkpoint_last_error:
                    print(
                        f"-- last checkpoint error: {service.checkpoint_last_error}",
                        file=sys.stderr,
                    )
                continue
            if command == ":stats":
                for key, value in sorted(service.stats().items()):
                    print(f"-- {key}: {value}", file=sys.stderr)
                continue
            if command:
                print(
                    "error: --listen console only takes "
                    ":quit / :checkpoint / :stats",
                    file=sys.stderr,
                )
    except KeyboardInterrupt:
        print("-- interrupted; draining", file=sys.stderr)
    finally:
        server.close()  # drains connections, then closes the service
        if args.trace_out:
            tracer = get_tracer()
            tracer.stop_capture()
            written = tracer.write_json(args.trace_out)
            print(f"-- wrote {written} trace span(s) to {args.trace_out}",
                  file=sys.stderr)
    if service.checkpoint_last_error:
        print(
            f"-- last checkpoint error: {service.checkpoint_last_error}",
            file=sys.stderr,
        )
    print(f"-- served {name}; WAL at {args.wal}", file=sys.stderr)
    return 0


def _serve_shards(args) -> int:
    """`serve --shards N`: spawn N worker processes behind a router.

    Each worker is a full service + async server over its own WAL under
    ``<shard-dir>/shard-<k>/``; the router forwards client frames to the
    shard that owns each document.  Workers always recover their WALs
    on startup (``--no-recover`` does not apply), so a restarted
    deployment carries every acknowledged update forward.
    """
    from repro.service import ShardCluster, write_port_file
    from repro.service.net import parse_address

    if not args.listen:
        print("error: --shards requires --listen", file=sys.stderr)
        return 2
    name, document, _dtd, _policy = _load(args)
    dtd_text = None
    if args.dtd:
        with open(args.dtd, "r", encoding="utf-8") as handle:
            dtd_text = handle.read()
    host, port = parse_address(args.listen)
    shard_dir = args.shard_dir or args.wal + ".shards"
    cluster = ShardCluster(
        shard_dir,
        {name: serialize(document)},
        args.shards,
        host=host,
        port=port,
        dtd_text=dtd_text,
        batch_size=args.batch_size,
        checkpoint_every_ops=args.checkpoint_every,
        checkpoint_every_bytes=args.checkpoint_bytes,
        query_workers=args.query_workers,
        readers=args.readers,
        max_inflight=args.max_inflight,
        router_options={"max_connections": args.max_connections},
    ).start()
    bound_host, bound_port = cluster.address
    print(
        f"-- routing {name} across {cluster.shards} shard(s) on "
        f"{bound_host}:{bound_port}; shard dirs under {shard_dir}",
        file=sys.stderr,
        flush=True,
    )
    if args.port_file:
        write_port_file(args.port_file, bound_port)
    try:
        for line in sys.stdin:
            command = line.strip()
            if command == ":quit":
                break
            if command == ":stats":
                for k in range(cluster.shards):
                    state = "up" if cluster.supervisor.alive(k) else "DOWN"
                    print(
                        f"-- shard-{k}: {state} "
                        f"(port {cluster.supervisor._ports[k]})",
                        file=sys.stderr,
                    )
                continue
            if command:
                print(
                    "error: --shards console only takes :quit / :stats "
                    "(use `repro connect` for statements and checkpoints)",
                    file=sys.stderr,
                )
    except KeyboardInterrupt:
        print("-- interrupted; draining", file=sys.stderr)
    finally:
        cluster.close()
    print(f"-- served {name}; shard WALs under {shard_dir}", file=sys.stderr)
    return 0


def cmd_connect(args) -> int:
    from repro.service.net import ServiceClient, parse_address

    host, port = parse_address(args.addr)
    with ServiceClient(
        host, port, request_timeout=args.timeout
    ) as client:
        if args.stats:
            import json as json_module

            stats = client.stats()
            print(json_module.dumps(
                {"service": stats["service"], "net": stats["net"]},
                indent=2, sort_keys=True,
            ))
            return 0
        if args.checkpoint:
            report = client.checkpoint()
            print(f"-- checkpoint at seq {report['wal_seq']}: "
                  f"{report['documents']} document(s), "
                  f"{report['segments_retired']} segment(s) retired",
                  file=sys.stderr)
            return 0
        doc = args.doc or client.ping()[0]
        statements = args.statements
        interactive = not statements
        if interactive:
            print(f"-- connected to {host}:{port}, document {doc!r}; "
                  "one statement per line, :quit to exit", file=sys.stderr)
            statements = (line.strip() for line in sys.stdin)
        for statement in statements:
            if not statement:
                continue
            if statement == ":quit":
                break
            if statement == ":flush":
                client.flush()
                print("-- flushed", file=sys.stderr)
                continue
            try:
                outcome = client.execute(doc, statement)
            except ReproError as error:
                print(f"error: {error}", file=sys.stderr)
                if not interactive:
                    return 1
                continue
            if "results" in outcome:
                for text in outcome["results"]:
                    print(text)
                print(f"-- {len(outcome['results'])} result(s)", file=sys.stderr)
            else:
                print(f"-- durable seq {outcome['seq']}: "
                      f"{outcome['delta_ops']} delta op(s)", file=sys.stderr)
    return 0


def _run_read_query(host, statement: str, policy) -> list[str]:
    """Run a FLWR statement against a hosted document (under read lock)."""
    engine = XQueryEngine({host.name: host.document}, policy=policy)
    result = engine.execute(statement)
    assert isinstance(result, QueryResult)
    rendered = []
    for node in result:
        from repro.xmlmodel.model import Element

        if isinstance(node, Element):
            rendered.append(serialize(node))
        else:
            from repro.xpath.evaluator import string_value

            rendered.append(string_value(node))
    return rendered


def cmd_replay(args) -> int:
    from repro.obs import get_tracer
    from repro.service import WriteAheadLog, replay_into_documents, wal_exists
    from repro.service.snapshot import SnapshotStore
    from repro.xmlmodel.parser import XmlParser

    if not wal_exists(args.wal):
        print(f"error: no WAL (file or segments) at {args.wal}", file=sys.stderr)
        return 2
    tracer = get_tracer()
    if args.trace_out:
        tracer.start_capture()
    name, document, _dtd, policy = _load(args)
    # A committed checkpoint supersedes the --xml base for its documents:
    # the manifest's state already contains every record <= its wal_seq.
    snapshots = SnapshotStore(args.checkpoint_dir or args.wal + ".ckpt")
    manifest = snapshots.load_manifest()
    min_seq = 0
    if manifest is not None and name in manifest.documents:
        text = snapshots.read_state(manifest, name).decode("utf-8")
        document = XmlParser(text, policy=policy).parse()
        min_seq = manifest.wal_seq
        print(
            f"-- loaded checkpoint snapshot covering seq <= {min_seq}",
            file=sys.stderr,
        )
    with WriteAheadLog(args.wal) as wal:
        report = replay_into_documents(
            wal, {name: document}, policy=policy, min_seq=min_seq
        )
    if args.trace_out:
        tracer.stop_capture()
        written = tracer.write_json(args.trace_out)
        print(f"-- wrote {written} trace span(s) to {args.trace_out}",
              file=sys.stderr)
    print(f"-- {report.summary()}", file=sys.stderr)
    recovered = serialize(document)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(recovered + "\n")
        print(f"-- wrote {args.output}", file=sys.stderr)
    else:
        print(recovered)
    return 1 if report.failed else 0


def cmd_checkpoint(args) -> int:
    from repro.service import ServiceConfig, UpdateService, wal_exists

    if not wal_exists(args.wal):
        print(f"error: no WAL (file or segments) at {args.wal}", file=sys.stderr)
        return 2
    name, document, _dtd, policy = _load(args)
    service = UpdateService(
        ServiceConfig(wal_path=args.wal, checkpoint_dir=args.checkpoint_dir)
    )
    service.host_document(name, document, policy)
    try:
        recovery = service.recover()
        print(f"-- recovery: {recovery.summary()}", file=sys.stderr)
        report = service.checkpoint(full=args.full)
    finally:
        service.close()
    print(f"-- {report.summary()}", file=sys.stderr)
    return 0


#: Metrics pre-registered by ``stats`` so a fresh process still prints a
#: meaningful (zero-valued) snapshot of the pipeline's core counters.
CORE_METRICS = (
    "sql.statements.client",
    "sql.statements.trigger",
    "wal.appends",
    "wal.fsyncs",
    "batcher.batches",
    "batcher.ops.applied",
    "xquery.statements",
    "xquery.bindings",
    "xquery.operations",
    "cache.parse.hits",
    "cache.parse.misses",
    "cache.plan.hits",
    "cache.plan.misses",
    "sql.pool.reads",
    "sql.pool.refreshes",
)


def cmd_stats(args) -> int:
    import json as json_module

    from repro.obs import get_registry

    registry = get_registry()
    for metric in CORE_METRICS:
        registry.counter(metric)
    if args.statements:
        if not args.xml:
            print("--exec requires --xml", file=sys.stderr)
            return 2
        name, document, _dtd, policy = _load(args)
        engine = XQueryEngine({name: document}, policy=policy)
        for statement in args.statements:
            engine.execute(statement)
    snapshot = registry.snapshot()
    if args.json:
        print(json_module.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    width = max(len(name) for name in snapshot)
    for metric_name, data in snapshot.items():
        if data["kind"] == "histogram":
            detail = (
                f"count={data['count']} sum={data['sum']:.6f} "
                f"mean={data['mean']:.6f}"
            )
            if data["max"] is not None:
                detail += f" min={data['min']:.6f} max={data['max']:.6f}"
        else:
            detail = f"{data['value']:g}"
        print(f"{data['kind']:<9} {metric_name:<{width}}  {detail}")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "query": cmd_query,
        "update": cmd_update,
        "validate": cmd_validate,
        "shell": cmd_shell,
        "serve": cmd_serve,
        "connect": cmd_connect,
        "replay": cmd_replay,
        "checkpoint": cmd_checkpoint,
        "stats": cmd_stats,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
