"""The paper's running example: the biology-labs document of Figure 1,
driven through every update Example (1-5) of Section 4.

Demonstrates the full update vocabulary of the in-memory engine:
deleting attributes/references/subelements, inserting constructed
content and references, positional (ordered-model) inserts, replaces
with label checking, and the multi-level nested update whose expected
output is the paper's Figure 3.

Run:  python examples/biology_labs.py
"""

from repro import XQueryEngine, parse, serialize
from repro.xmlmodel.policy import RefPolicy

BIO_XML = """\
<db lab="lalab">
  <university ID="ucla">
    <lab ID="lalab" managers="smith1 jones1">
      <name>UCLA Bio Lab</name>
      <city>Los Angeles</city>
    </lab>
  </university>
  <lab ID="baselab" managers="smith1">
    <name>Seattle Bio Lab</name>
    <location>
      <city>Seattle</city>
      <country>USA</country>
    </location>
  </lab>
  <lab ID="lab2">
    <name>PMBL</name>
    <city>Philadelphia</city>
    <country>USA</country>
  </lab>
  <paper ID="Smith991231" source="lab2" category="spectral" biologist="smith1">
    <title>Autocatalysis of Spectral...</title>
  </paper>
  <biologist ID="smith1">
    <lastname>Smith</lastname>
  </biologist>
  <biologist ID="jones1" age="32">
    <lastname>Jones</lastname>
  </biologist>
</db>
"""

# IDREF/IDREFS typing for the attributes of Figure 1.
BIO_POLICY = RefPolicy.explicit(
    references=("managers",),
    singleton_references=("source", "biologist", "lab", "worksAt"),
)

EXAMPLES = [
    (
        "Example 1: delete an attribute, an IDREF, and a subelement",
        """
        FOR $p IN document("bio.xml")/db/paper,
            $cat IN $p/@category,
            $bio IN $p/ref(biologist,"smith1"),
            $ti IN $p/title
        UPDATE $p { DELETE $cat, DELETE $bio, DELETE $ti }
        """,
    ),
    (
        "Example 2: insert an attribute, two references, and a subelement",
        """
        FOR $bio in document("bio.xml")/db/biologist[@ID="smith1"]
        UPDATE $bio {
            INSERT new_attribute(age,"29"),
            INSERT new_ref(worksAt,"ucla"),
            INSERT new_ref(worksAt,"baselab"),
            INSERT <firstname>Jeff</firstname>
        }
        """,
    ),
    (
        "Example 3: positional inserts (ordered model)",
        """
        FOR $lab in document("bio.xml")/db/lab[@ID="baselab"],
            $n IN $lab/name,
            $sref IN $lab/ref(managers,"smith1")
        UPDATE $lab {
            INSERT "jones1" BEFORE $sref,
            INSERT <street>Oak</street> AFTER $n
        }
        """,
    ),
    (
        "Example 4: replace an element and a reference (same-label rule)",
        """
        FOR $lab in document("bio.xml")/db/lab[@ID="baselab"],
            $name IN $lab/name,
            $mgr IN $lab/ref(managers, "smith1")
        UPDATE $lab {
            REPLACE $name WITH <appellation>Fancy Lab</>,
            REPLACE $mgr WITH new_attribute(managers,"jones1")
        }
        """,
    ),
    (
        "Example 5: multi-level nested update (expected output: Figure 3)",
        """
        FOR $u in document("bio.xml")/db/university[@ID="ucla"],
            $lab IN $u/lab
        WHERE $lab.index() = 0
        UPDATE $u {
            INSERT new_attribute(labs,"2"),
            INSERT <lab ID="newlab">
                       <name>UCLA Secondary Lab</name>
                   </lab> BEFORE $lab,
            FOR $l1 IN $u/lab,
                $labname IN $l1/name,
                $ci IN $l1/city
            UPDATE $l1 {
                REPLACE $labname WITH <name>UCLA Primary Lab</>,
                DELETE $ci
            }
        }
        """,
    ),
]


def main() -> None:
    document = parse(BIO_XML, policy=BIO_POLICY)
    engine = XQueryEngine({"bio.xml": document}, policy=BIO_POLICY)

    for title, statement in EXAMPLES:
        print(f"--- {title} ---")
        result = engine.execute(statement)
        print(f"    ({result.bindings} binding(s), {result.operations} operation(s))")
    print()
    print("Final document (compare the <university> subtree with Figure 3):")
    print(serialize(document))


if __name__ == "__main__":
    main()
