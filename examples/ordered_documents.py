"""Order-preserving storage: the paper's §8 future work, working.

The base relational store follows the paper in not recording document
order — positional inserts degrade to appends.  ``OrderedXmlStore``
adds the position side-table the conclusion sketches, and this script
shows both halves of the story:

1. a positional insert honoured end-to-end through SQL;
2. the "pushing positions" cost — dense renumbering vs. gap ordinals.

Run:  python examples/ordered_documents.py
"""

import time

from repro.relational.ordered import GapPolicy, RenumberPolicy
from repro.relational.ordered_store import OrderedXmlStore
from repro.relational.store import XmlStore
from repro.xmlmodel import parse, serialize

DTD = """\
<!ELEMENT playlist (track*)>
<!ELEMENT track (title)>
<!ELEMENT title (#PCDATA)>
"""

XML = """\
<playlist>
  <track><title>Opening</title></track>
  <track><title>Finale</title></track>
</playlist>
"""

INSERT_BETWEEN = """
    FOR $p IN document("playlist.xml")/playlist,
        $last IN $p/track[title="Finale"]
    UPDATE $p {
        INSERT <track><title>Interlude</title></track> BEFORE $last
    }
"""


def titles(store) -> list[str]:
    results = store.query(
        'FOR $p IN document("playlist.xml")/playlist RETURN $p'
    )
    return [
        track.child_elements("title")[0].text()
        for track in results[0].child_elements("track")
    ]


def show_unordered() -> None:
    print("=== Base store (paper semantics: order not stored) ===")
    store = XmlStore.from_dtd(DTD, document_name="playlist.xml")
    store.load(parse(XML))
    store.execute(INSERT_BETWEEN)
    print(f"tracks after INSERT ... BEFORE: {titles(store)}")
    print(f"warnings: {store.warnings}")
    store.close()
    print()


def show_ordered() -> None:
    print("=== OrderedXmlStore (the §8 extension) ===")
    store = OrderedXmlStore.from_dtd(DTD, document_name="playlist.xml")
    store.load(parse(XML))
    store.execute(INSERT_BETWEEN)
    print(f"tracks after INSERT ... BEFORE: {titles(store)}")
    print(f"warnings: {store.warnings or 'none'}")
    store.close()
    print()


def show_push_cost() -> None:
    print("=== The 'pushing positions' problem (front inserts) ===")
    for policy_factory in (RenumberPolicy, GapPolicy):
        store = OrderedXmlStore.from_dtd(
            DTD, document_name="playlist.xml", order_policy=policy_factory()
        )
        tracks = "".join(
            f"<track><title>t{i}</title></track>" for i in range(400)
        )
        store.load(parse(f"<playlist>{tracks}</playlist>"))
        root_id = store.db.query_one("SELECT id FROM playlist")[0]
        start = time.perf_counter()
        for i in range(150):
            new_id = store.allocator.reserve(1)
            store.db.execute(
                "INSERT INTO track (id, parentId, title) VALUES (?, ?, ?)",
                (new_id, root_id, f"new{i}"),
            )
            store.order.register_insert(new_id, root_id, 0)
        elapsed = time.perf_counter() - start
        name = store.order.policy.name
        extra = ""
        if isinstance(store.order.policy, GapPolicy):
            extra = f" (rebalances: {store.order.policy.rebalances})"
        print(f"  {name:>9}: 150 front inserts among 400 tracks in "
              f"{elapsed * 1000:.1f} ms{extra}")
        store.close()


if __name__ == "__main__":
    show_unordered()
    show_ordered()
    show_push_cost()
