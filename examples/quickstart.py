"""Quickstart: update an XML document two ways — in memory, and through
the relational (SQLite) store.

Run:  python examples/quickstart.py
"""

from repro import XQueryEngine, XmlStore, parse, serialize

DTD = """\
<!ELEMENT CustDB (Customer*)>
<!ELEMENT Customer (Name, Address, Order*)>
<!ELEMENT Address (City, State)>
<!ELEMENT Order (Date, Status, OrderLine*)>
<!ELEMENT OrderLine (ItemName, Qty)>
<!ELEMENT Name (#PCDATA)>
<!ELEMENT City (#PCDATA)>
<!ELEMENT State (#PCDATA)>
<!ELEMENT Date (#PCDATA)>
<!ELEMENT Status (#PCDATA)>
<!ELEMENT ItemName (#PCDATA)>
<!ELEMENT Qty (#PCDATA)>
"""

XML = """\
<CustDB>
  <Customer>
    <Name>John</Name>
    <Address><City>Seattle</City><State>WA</State></Address>
    <Order>
      <Date>2000-05-01</Date><Status>ready</Status>
      <OrderLine><ItemName>tire</ItemName><Qty>4</Qty></OrderLine>
    </Order>
  </Customer>
  <Customer>
    <Name>Mary</Name>
    <Address><City>Portland</City><State>OR</State></Address>
  </Customer>
</CustDB>
"""

# The paper's Example 9: delete customer data for customers named John.
DELETE_JOHNS = """
    FOR $d IN document("custdb.xml")/CustDB,
        $c IN $d/Customer[Name="John"]
    UPDATE $d { DELETE $c }
"""


def run_in_memory() -> None:
    print("=== In-memory engine ===")
    document = parse(XML)
    engine = XQueryEngine({"custdb.xml": document})
    result = engine.execute(DELETE_JOHNS)
    print(f"bindings matched: {result.bindings}, operations run: {result.operations}")
    print(serialize(document))
    print()


def run_relational() -> None:
    print("=== Relational store (SQLite) ===")
    store = XmlStore.from_dtd(DTD, document_name="custdb.xml")
    store.load(parse(XML))
    print(f"loaded {store.tuple_count()} tuples into "
          f"{len(store.schema.relations)} relations: "
          f"{sorted(store.schema.relations)}")

    # Query through the Sorted Outer Union before updating.
    johns = store.query(
        'FOR $c IN document("custdb.xml")/CustDB/Customer[Name="John"] RETURN $c'
    )
    print(f"customers named John before delete: {len(johns)}")

    store.set_delete_method("per_tuple_trigger")  # the paper's overall winner
    store.db.counts.reset()
    store.execute(DELETE_JOHNS)
    print(f"delete translated to {store.db.counts.client} SQL statement(s)")

    remaining = store.query(
        'FOR $c IN document("custdb.xml")/CustDB/Customer RETURN $c'
    )
    print("remaining customers:")
    for customer in remaining:
        print(serialize(customer, indent=2))


if __name__ == "__main__":
    run_in_memory()
    run_relational()
