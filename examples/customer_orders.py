"""Customer-orders scenario over the relational store (Sections 5-6).

Walks through what the paper's middleware layer does for the TPC/W-style
customer database of Figure 4:

* shredding via Shared Inlining (and showing the derived schema);
* the Sorted Outer Union query of Figure 5 / Example 6;
* Example 8's nested update with the ordering pitfall;
* Example 9's complex delete under each strategy, with SQL statement
  counts (the paper's key cost driver);
* Example 10-style subtree copies under each insert strategy.

Run:  python examples/customer_orders.py
"""

from repro import XmlStore, serialize
from repro.workloads.tpcw import CUSTOMER_DTD, CustomerParams, generate_customers


def show_schema(store: XmlStore) -> None:
    print("Shared Inlining schema (cf. §5.1):")
    for relation in store.schema.iter_top_down():
        parent = f" -> parent {relation.parent}" if relation.parent else " (root)"
        print(f"  {relation.name}({', '.join(relation.all_columns)}){parent}")
    print()


def show_outer_union(store: XmlStore) -> None:
    from repro.relational.outer_union import build_outer_union

    query = build_outer_union(store.schema, "Customer", '"Customer"."Name" = ?', ("John0",))
    print("Sorted Outer Union SQL for Example 6 (Figure 5 shape):")
    print(" ", query.sql.replace(" UNION ALL", "\n  UNION ALL")[:800])
    print()


def run_nested_update(store: XmlStore) -> None:
    print("Example 8 (nested update; bindings materialised before execution):")
    store.execute(
        """
        FOR $o IN document("custdb.xml")//Order
            [Status="ready" and OrderLine/ItemName="tire"]
        UPDATE $o {
            INSERT <Status>suspended</Status>,
            FOR $i IN $o/OrderLine,
                $n IN $i/ItemName
            WHERE $i/ItemName="tire"
            UPDATE $i { REPLACE $n WITH <ItemName>tire-recalled</ItemName> }
        }
        """
    )
    recalled = store.db.query_one(
        "SELECT COUNT(*) FROM OrderLine WHERE ItemName='tire-recalled'"
    )[0]
    suspended = store.db.query_one(
        "SELECT COUNT(*) FROM \"Order\" WHERE Status='suspended'"
    )[0]
    print(f"  order lines recalled: {recalled}; orders suspended: {suspended}")
    print()


def compare_delete_strategies() -> None:
    print("Example 9 under each delete strategy (statement counts):")
    for method in ("per_tuple_trigger", "per_statement_trigger", "cascade", "asr"):
        store = XmlStore.from_dtd(CUSTOMER_DTD, document_name="custdb.xml")
        store.load(generate_customers(CustomerParams(customers=200, seed=7)))
        store.set_delete_method(method)
        store.db.counts.reset()
        store.execute(
            'FOR $d IN document("custdb.xml")/CustDB, '
            '$c IN $d/Customer[Address/State="WA"] '
            "UPDATE $d { DELETE $c }"
        )
        counts = store.db.counts
        print(
            f"  {method:>22}: {counts.client} client statement(s) + "
            f"{counts.trigger_emulation} inside statement-trigger emulation; "
            f"{store.tuple_count('Customer')} customers left"
        )
        store.close()
    print()


def compare_insert_strategies() -> None:
    print("Copying all WA customers (Example 10 shape) under each insert strategy:")
    for method in ("tuple", "table", "asr"):
        store = XmlStore.from_dtd(CUSTOMER_DTD, document_name="custdb.xml")
        store.load(generate_customers(CustomerParams(customers=200, seed=7)))
        store.set_insert_method(method)
        store.db.counts.reset()
        store.execute(
            'FOR $source IN document("custdb.xml")/CustDB/Customer'
            '[Address/State="WA"], '
            '$target IN document("custdb.xml")/CustDB '
            "UPDATE $target { INSERT $source }"
        )
        print(
            f"  {method:>6}: {store.db.counts.client} SQL statement(s), "
            f"now {store.tuple_count('Customer')} customers"
        )
        store.close()
    print()


def main() -> None:
    store = XmlStore.from_dtd(CUSTOMER_DTD, document_name="custdb.xml")
    document = generate_customers(CustomerParams(customers=50, seed=7))
    store.load(document)
    show_schema(store)
    show_outer_union(store)

    results = store.query(
        'FOR $c IN document("custdb.xml")/CustDB/Customer[Name="John0"] RETURN $c'
    )
    if results:
        print("Example 6 result (reconstructed from the tuple stream):")
        print(serialize(results[0]))
        print()

    run_nested_update(store)
    store.close()
    compare_delete_strategies()
    compare_insert_strategies()


if __name__ == "__main__":
    main()
