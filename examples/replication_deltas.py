"""Deltas for mirroring and replication (the paper's §1 motivation).

"The ability to encapsulate an update operation is also necessary for
expressing incremental changes ('deltas') over content, which is
important for Continuous Queries, XML document mirroring, caching, and
replication."

This script plays both sides of a replication link: a primary document
is edited with XQuery updates, a delta is computed against the previous
version and "transmitted" (JSON), and a replica applies it — ending up
byte-identical without ever seeing the update statements.

Run:  python examples/replication_deltas.py
"""

from repro import XQueryEngine, parse, serialize
from repro.updates.delta import apply_delta, diff, from_json, to_json

CATALOG = """\
<catalog>
  <product sku="A1"><name>Anvil</name><price>35</price></product>
  <product sku="B2"><name>Bellows</name><price>12</price></product>
  <product sku="C3"><name>Crowbar</name><price>9</price></product>
</catalog>
"""

EDITS = [
    # A price change...
    """
    FOR $p IN document("catalog.xml")/catalog/product[@sku="B2"],
        $price IN $p/price
    UPDATE $p { REPLACE $price WITH <price>14</price> }
    """,
    # ...a discontinued product...
    """
    FOR $c IN document("catalog.xml")/catalog,
        $p IN $c/product[@sku="C3"]
    UPDATE $c { DELETE $p }
    """,
    # ...and a new one.
    """
    FOR $c IN document("catalog.xml")/catalog
    UPDATE $c { INSERT <product sku="D4"><name>Drill</name>
                <price>59</price></product> }
    """,
]


def main() -> None:
    primary = parse(CATALOG)
    replica = parse(CATALOG)  # the mirror, possibly on another machine
    engine = XQueryEngine({"catalog.xml": primary})

    previous = parse(serialize(primary))  # snapshot of the last shipped state
    for statement in EDITS:
        engine.execute(statement)

    ops = diff(previous, primary)
    wire = to_json(ops)
    print(f"primary applied {len(EDITS)} update statements")
    print(f"delta: {len(ops)} operations, {len(wire)} bytes on the wire")
    for op in ops:
        print(f"  {op}")

    apply_delta(replica, from_json(wire))
    in_sync = serialize(replica, indent=0) == serialize(primary, indent=0)
    print(f"\nreplica in sync after replay: {in_sync}")
    print("\nreplica now reads:")
    print(serialize(replica))


if __name__ == "__main__":
    main()
