"""DBLP scenario (Section 7.1.3 / Table 2): bulk bibliography maintenance.

Loads DBLP-shaped data (a synthetic stand-in for the paper's 40 MB DBLP
snapshot — see DESIGN.md), then runs Table 2's two operations:

* delete every publication of year 2000, under all four strategies;
* replicate ten conference subtrees, under all three insert strategies;

printing per-strategy timings measured with the paper's protocol
(5 runs, first discarded).

Run:  python examples/dblp_updates.py
"""

import time

from repro.bench.experiments import build_dblp_store, random_subtree_ids
from repro.bench.harness import ExperimentRunner
from repro.workloads.dblp import DblpParams


def main() -> None:
    params = DblpParams(conferences=60, seed=11)
    print(f"loading DBLP-shaped data (~{params.expected_tuples():,} tuples)...")
    start = time.perf_counter()
    master = build_dblp_store(params)
    total = master.tuple_count()
    print(f"  {total:,} tuples in {time.perf_counter() - start:.1f}s")
    year_2000 = master.db.query_one(
        "SELECT COUNT(*) FROM publication WHERE year='2000'"
    )[0]
    publications = master.tuple_count("publication")
    print(
        f"  {publications:,} publications; {year_2000:,} from year 2000 "
        f"({100 * year_2000 / publications:.1f}% — a small slice of bushy data)"
    )
    print()

    runner = ExperimentRunner(master)

    print("Table 2, delete row — remove all year-2000 publications:")
    for method in ("per_tuple_trigger", "per_statement_trigger", "cascade", "asr"):
        master.set_delete_method(method)
        measurement = runner.measure(
            method,
            0,
            lambda store: store.delete_subtrees(
                "publication", '"publication"."year" = ?', ("2000",)
            ),
        )
        print(
            f"  {method:>22}: {measurement.seconds * 1000:8.2f} ms "
            f"({measurement.client_statements} client + "
            f"{measurement.trigger_statements} trigger statements)"
        )
    print("  (paper, DB2/2001: per-tuple 1.6s < ASR 2.2s < per-stm 4.6s ~ cascade 4.8s)")
    print()

    print("Table 2, insert row — replicate 10 conference subtrees:")
    root_id = master.db.query_one('SELECT id FROM "dblp"')[0]
    ids = random_subtree_ids(master, "conference")
    for method in ("tuple", "table", "asr"):
        master.set_insert_method(method)

        def operation(store):
            for conference_id in ids:
                store.copy_subtrees(
                    "conference", '"conference".id = ?', (conference_id,), root_id
                )

        measurement = runner.measure(method, 0, operation)
        print(
            f"  {method:>22}: {measurement.seconds * 1000:8.2f} ms "
            f"({measurement.client_statements} statements)"
        )
    print("  (paper, DB2/2001: table 1.7s < ASR 4.2s < tuple 15.4s)")
    master.close()


if __name__ == "__main__":
    main()
